//! Report diffing: compare two runs (or two `BENCH_report.json` files)
//! and classify every delta.
//!
//! The comparison discipline follows the determinism contract:
//!
//! * **Guest metrics** — cycles, instruction counts, IPC, the 8-phase
//!   latency decomposition, the 6-category critical path, the Fig. 5/7
//!   stall taxonomy, latency percentiles — are deterministic simulator
//!   outputs. Two runs of the same `(fingerprint, seed)` must agree
//!   **exactly**; any drift is a determinism regression and fails the
//!   gate unconditionally.
//! * **Host wall-clock metrics** — engine wall time, bench `*_secs`
//!   columns — legitimately vary run to run. They are compared against a
//!   [`NoiseBand`] derived from repeated-seed replicates (falling back to
//!   a configurable percentage), and only when both sides ran on hosts
//!   with the same core count; cross-host wall clocks are reported but
//!   never gated.
//!
//! Deltas render as aligned text, Markdown (the CI artifact), or JSON.

use crate::{BenchRow, BENCH_SCHEMA_VERSION};
use smtp_core::{json, JsonValue, ParsedReport};
use smtp_types::Histogram;

/// Default wall-clock regression tolerance when no replicate noise band
/// is available: ±25 %.
pub const DEFAULT_WALL_TOL_FRAC: f64 = 0.25;

/// Tuning knobs for a diff.
#[derive(Clone, Debug)]
pub struct DiffOptions {
    /// Wall-clock regression tolerance as a fraction (0.25 = 25 %). The
    /// effective tolerance is the larger of this and the noise band's
    /// observed spread.
    pub wall_tol_frac: f64,
    /// Noise band measured from repeated-seed replicates, when available.
    pub noise: Option<NoiseBand>,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            wall_tol_frac: DEFAULT_WALL_TOL_FRAC,
            noise: None,
        }
    }
}

impl DiffOptions {
    /// The effective wall-clock tolerance: the configured floor widened
    /// to the replicate noise band when one is present.
    pub fn tolerance_frac(&self) -> f64 {
        match &self.noise {
            Some(band) => self.wall_tol_frac.max(band.spread_frac()),
            None => self.wall_tol_frac,
        }
    }
}

/// Run-to-run wall-clock noise measured from repeated-seed replicates.
///
/// Samples go into the existing log2 [`Histogram`], so bands from
/// different replicate batches merge exactly associatively; the band's
/// half-width is the observed relative spread `(max - min) / mean`.
#[derive(Clone, Debug, Default)]
pub struct NoiseBand {
    /// Replicate wall-clock samples in nanoseconds.
    pub wall_ns: Histogram,
}

impl NoiseBand {
    /// Band over replicate wall-clock samples (nanoseconds).
    pub fn from_wall_ns(samples: &[u64]) -> NoiseBand {
        let mut wall_ns = Histogram::new();
        for &s in samples {
            wall_ns.record(s);
        }
        NoiseBand { wall_ns }
    }

    /// Fold another batch of replicates into the band.
    pub fn merge(&mut self, other: &NoiseBand) {
        self.wall_ns.merge(&other.wall_ns);
    }

    /// Observed relative spread `(max - min) / mean` (0 with fewer than
    /// two samples).
    pub fn spread_frac(&self) -> f64 {
        if self.wall_ns.count() < 2 || self.wall_ns.mean() == 0.0 {
            return 0.0;
        }
        (self.wall_ns.max() - self.wall_ns.min()) as f64 / self.wall_ns.mean()
    }
}

/// How one compared metric is judged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaKind {
    /// Guest metric: must match exactly.
    Guest,
    /// Wall-clock metric: compared against the noise tolerance.
    Wall,
    /// Reported for context, never gated.
    Info,
}

/// One compared metric.
#[derive(Clone, Debug)]
pub struct MetricDelta {
    /// Metric name (dotted path, e.g. `phase.net req fwd.remote_mean`).
    pub name: String,
    /// Value on the baseline side.
    pub a: String,
    /// Value on the candidate side.
    pub b: String,
    /// Whether the two sides agree (exactly for guest metrics, within
    /// tolerance for wall metrics).
    pub ok: bool,
    /// Judgement class.
    pub kind: DeltaKind,
}

impl MetricDelta {
    fn guest_u64(name: impl Into<String>, a: u64, b: u64) -> MetricDelta {
        MetricDelta {
            name: name.into(),
            a: a.to_string(),
            b: b.to_string(),
            ok: a == b,
            kind: DeltaKind::Guest,
        }
    }

    /// Guest floats come out of the same deterministic serializer on both
    /// sides, so bit-exact equality of the parsed values is the right
    /// comparison — any difference means the guest state differed.
    fn guest_f64(name: impl Into<String>, a: f64, b: f64) -> MetricDelta {
        MetricDelta {
            name: name.into(),
            a: format!("{a}"),
            b: format!("{b}"),
            ok: a == b,
            kind: DeltaKind::Guest,
        }
    }

    fn guest_str(name: impl Into<String>, a: &str, b: &str) -> MetricDelta {
        MetricDelta {
            name: name.into(),
            a: a.to_string(),
            b: b.to_string(),
            ok: a == b,
            kind: DeltaKind::Guest,
        }
    }
}

/// Result of diffing two run reports. Build with [`diff_reports`].
#[derive(Clone, Debug, Default)]
pub struct ReportDiff {
    /// Every compared metric, in report order.
    pub metrics: Vec<MetricDelta>,
    /// Wall-clock comparison, when both reports carried a host profile
    /// from hosts with the same worker configuration.
    pub wall: Option<WallDelta>,
    /// Why the wall clocks were not gated, when they were not.
    pub wall_note: Option<String>,
}

/// Wall-clock comparison between two runs.
#[derive(Clone, Debug)]
pub struct WallDelta {
    /// Baseline wall nanoseconds.
    pub base_ns: u64,
    /// Candidate wall nanoseconds.
    pub new_ns: u64,
    /// Tolerance fraction the judgement used.
    pub tol_frac: f64,
    /// `new / base`.
    pub ratio: f64,
    /// Candidate exceeded `base * (1 + tol)`.
    pub regression: bool,
}

impl WallDelta {
    fn judge(base_ns: u64, new_ns: u64, tol_frac: f64) -> WallDelta {
        let ratio = if base_ns == 0 {
            1.0
        } else {
            new_ns as f64 / base_ns as f64
        };
        WallDelta {
            base_ns,
            new_ns,
            tol_frac,
            ratio,
            regression: ratio > 1.0 + tol_frac,
        }
    }
}

impl ReportDiff {
    /// Mismatching guest metrics.
    pub fn guest_drift(&self) -> Vec<&MetricDelta> {
        self.metrics
            .iter()
            .filter(|m| m.kind == DeltaKind::Guest && !m.ok)
            .collect()
    }

    /// Whether any guest metric drifted.
    pub fn has_guest_drift(&self) -> bool {
        !self.guest_drift().is_empty()
    }

    /// Whether the wall clock regressed beyond tolerance.
    pub fn has_wall_regression(&self) -> bool {
        self.wall.as_ref().is_some_and(|w| w.regression)
    }

    /// Gate verdict: `Err` describes every failure.
    pub fn gate(&self) -> Result<(), String> {
        let mut fails = Vec::new();
        for m in self.guest_drift() {
            fails.push(format!("guest drift: {} {} -> {}", m.name, m.a, m.b));
        }
        if let Some(w) = &self.wall {
            if w.regression {
                fails.push(format!(
                    "wall-clock regression: {:.1} ms -> {:.1} ms ({:.2}x > 1+{:.0}% tolerance)",
                    w.base_ns as f64 / 1e6,
                    w.new_ns as f64 / 1e6,
                    w.ratio,
                    100.0 * w.tol_frac
                ));
            }
        }
        if fails.is_empty() {
            Ok(())
        } else {
            Err(fails.join("\n"))
        }
    }

    /// Render as aligned text.
    pub fn render_text(&self) -> String {
        self.render(false)
    }

    /// Render as Markdown (the CI artifact format).
    pub fn render_markdown(&self) -> String {
        self.render(true)
    }

    fn render(&self, md: bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let drift = self.guest_drift().len();
        if md {
            out.push_str("## Report diff\n\n");
        } else {
            out.push_str("== Report diff\n");
        }
        let _ = writeln!(
            out,
            "{} guest metrics compared, {drift} drifted{}",
            self.metrics.len(),
            if drift == 0 { " (bit-identical)" } else { "" }
        );
        if md {
            out.push_str("\n| metric | baseline | candidate | verdict |\n|---|---|---|---|\n");
        }
        for m in &self.metrics {
            if m.ok && drift > 0 {
                continue; // with drift present, show only the drift
            }
            if !m.ok || !md {
                let verdict = if m.ok { "ok" } else { "DRIFT" };
                if md {
                    let _ = writeln!(out, "| {} | {} | {} | {verdict} |", m.name, m.a, m.b);
                } else if !m.ok {
                    let _ = writeln!(out, "  DRIFT {:<32} {} -> {}", m.name, m.a, m.b);
                }
            }
        }
        match (&self.wall, &self.wall_note) {
            (Some(w), _) => {
                let _ = writeln!(
                    out,
                    "wall clock: {:.1} ms -> {:.1} ms ({:.2}x, tolerance {:.0}%): {}",
                    w.base_ns as f64 / 1e6,
                    w.new_ns as f64 / 1e6,
                    w.ratio,
                    100.0 * w.tol_frac,
                    if w.regression { "REGRESSION" } else { "ok" }
                );
            }
            (None, Some(note)) => {
                let _ = writeln!(out, "wall clock not gated: {note}");
            }
            (None, None) => {}
        }
        out
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"a\":\"{}\",\"b\":\"{}\",\"ok\":{},\"kind\":\"{}\"}}",
                m.name,
                m.a,
                m.b,
                m.ok,
                match m.kind {
                    DeltaKind::Guest => "guest",
                    DeltaKind::Wall => "wall",
                    DeltaKind::Info => "info",
                }
            );
        }
        let _ = write!(
            out,
            "],\"guest_drift\":{},\"wall\":",
            self.has_guest_drift()
        );
        match &self.wall {
            Some(w) => {
                let _ = write!(
                    out,
                    "{{\"base_ns\":{},\"new_ns\":{},\"ratio\":{:.4},\"tol_frac\":{:.4},\
                     \"regression\":{}}}",
                    w.base_ns, w.new_ns, w.ratio, w.tol_frac, w.regression
                );
            }
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

/// Diff two parsed run reports (baseline `a`, candidate `b`).
pub fn diff_reports(a: &ParsedReport, b: &ParsedReport, opts: &DiffOptions) -> ReportDiff {
    let mut m = vec![
        MetricDelta::guest_str("model", &a.model, &b.model),
        MetricDelta::guest_str("app", &a.app, &b.app),
        MetricDelta::guest_u64("nodes", a.nodes, b.nodes),
        MetricDelta::guest_u64("ways", a.ways, b.ways),
        MetricDelta::guest_u64("cycles", a.cycles, b.cycles),
        MetricDelta::guest_u64("app_instructions", a.app_instructions, b.app_instructions),
        MetricDelta::guest_u64(
            "protocol_instructions",
            a.protocol_instructions,
            b.protocol_instructions,
        ),
        MetricDelta::guest_f64("ipc", a.ipc, b.ipc),
        MetricDelta::guest_u64("handlers", a.handlers, b.handlers),
        MetricDelta::guest_f64(
            "protocol_occupancy_mean",
            a.protocol_occupancy_mean,
            b.protocol_occupancy_mean,
        ),
        MetricDelta::guest_f64(
            "protocol_occupancy_peak",
            a.protocol_occupancy_peak,
            b.protocol_occupancy_peak,
        ),
    ];
    for (tag, ha, hb) in [
        ("miss_latency", Some(&a.miss_latency), Some(&b.miss_latency)),
        (
            "remote_miss",
            a.remote_miss.as_ref(),
            b.remote_miss.as_ref(),
        ),
    ] {
        if let (Some(ha), Some(hb)) = (ha, hb) {
            m.push(MetricDelta::guest_u64(
                format!("{tag}.count"),
                ha.count,
                hb.count,
            ));
            m.push(MetricDelta::guest_f64(
                format!("{tag}.mean"),
                ha.mean,
                hb.mean,
            ));
            m.push(MetricDelta::guest_u64(format!("{tag}.p50"), ha.p50, hb.p50));
            m.push(MetricDelta::guest_u64(format!("{tag}.p95"), ha.p95, hb.p95));
            m.push(MetricDelta::guest_u64(format!("{tag}.max"), ha.max, hb.max));
        }
    }
    // The 8-phase decomposition, matched by phase name so a reordered or
    // truncated phase list is itself a detected drift.
    let phase_names: Vec<&str> = a
        .phases
        .iter()
        .map(|p| p.phase.as_str())
        .chain(b.phases.iter().map(|p| p.phase.as_str()))
        .fold(Vec::new(), |mut acc, n| {
            if !acc.contains(&n) {
                acc.push(n);
            }
            acc
        });
    for name in phase_names {
        let pa = a.phases.iter().find(|p| p.phase == name);
        let pb = b.phases.iter().find(|p| p.phase == name);
        match (pa, pb) {
            (Some(pa), Some(pb)) => {
                m.push(MetricDelta::guest_u64(
                    format!("phase.{name}.remote_count"),
                    pa.remote_count,
                    pb.remote_count,
                ));
                m.push(MetricDelta::guest_f64(
                    format!("phase.{name}.remote_mean"),
                    pa.remote_mean,
                    pb.remote_mean,
                ));
                m.push(MetricDelta::guest_f64(
                    format!("phase.{name}.all_mean"),
                    pa.all_mean,
                    pb.all_mean,
                ));
            }
            _ => m.push(MetricDelta::guest_str(
                format!("phase.{name}"),
                if pa.is_some() { "present" } else { "absent" },
                if pb.is_some() { "present" } else { "absent" },
            )),
        }
    }
    // Critical path (6 categories).
    m.push(MetricDelta::guest_u64(
        "critical_path.spans",
        a.critical_path.spans,
        b.critical_path.spans,
    ));
    m.push(MetricDelta::guest_u64(
        "critical_path.total_cycles",
        a.critical_path.total_cycles,
        b.critical_path.total_cycles,
    ));
    for (name, va) in &a.critical_path.cycles {
        let vb = b
            .critical_path
            .cycles
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(u64::MAX);
        m.push(MetricDelta::guest_u64(
            format!("critical_path.{name}"),
            *va,
            vb,
        ));
    }
    // Stall taxonomy (Fig. 5/7 buckets, summed over contexts; per-context
    // rows are covered transitively since totals are sums of guest
    // integers).
    const BUCKETS: [&str; 6] = ["busy", "memory", "sync", "squash", "fetch_starved", "other"];
    m.push(MetricDelta::guest_u64(
        "thread_time.contexts",
        a.thread_time.len() as u64,
        b.thread_time.len() as u64,
    ));
    for (i, name) in BUCKETS.iter().enumerate() {
        m.push(MetricDelta::guest_u64(
            format!("stall.{name}"),
            a.stall_totals()[i],
            b.stall_totals()[i],
        ));
    }

    // Spatial hot-spot attribution: pure guest state, so every field is
    // exact. Only compared when both reports carry the section (schema ≤ 3
    // baselines predate it); a presence mismatch between two v4 documents
    // is itself drift, so presence is compared whenever either side has it.
    match (&a.spatial, &b.spatial) {
        (Some(sa), Some(sb)) => {
            m.push(MetricDelta::guest_str(
                "spatial.enabled",
                if sa.enabled { "true" } else { "false" },
                if sb.enabled { "true" } else { "false" },
            ));
            m.push(MetricDelta::guest_u64(
                "spatial.tracked_events",
                sa.tracked_events,
                sb.tracked_events,
            ));
            m.push(MetricDelta::guest_u64(
                "spatial.hot_lines",
                sa.hot_lines.len() as u64,
                sb.hot_lines.len() as u64,
            ));
            for (la, lb) in sa.hot_lines.iter().zip(&sb.hot_lines) {
                let tag = format!("spatial.line[{:#x}]", la.line);
                m.push(MetricDelta::guest_u64(
                    format!("{tag}.line"),
                    la.line,
                    lb.line,
                ));
                m.push(MetricDelta::guest_u64(
                    format!("{tag}.weight"),
                    la.weight,
                    lb.weight,
                ));
                m.push(MetricDelta::guest_str(
                    format!("{tag}.class"),
                    &la.class,
                    &lb.class,
                ));
                m.push(MetricDelta::guest_u64(
                    format!("{tag}.nacks"),
                    la.nacks,
                    lb.nacks,
                ));
            }
            m.push(MetricDelta::guest_u64(
                "spatial.homes",
                sa.homes.len() as u64,
                sb.homes.len() as u64,
            ));
            for (ha, hb) in sa.homes.iter().zip(&sb.homes) {
                let tag = format!("spatial.home[{}]", ha.node);
                m.push(MetricDelta::guest_u64(
                    format!("{tag}.handlers"),
                    ha.handlers,
                    hb.handlers,
                ));
                m.push(MetricDelta::guest_u64(
                    format!("{tag}.occ_cycles"),
                    ha.occ_cycles,
                    hb.occ_cycles,
                ));
                m.push(MetricDelta::guest_u64(
                    format!("{tag}.nacks"),
                    ha.nacks,
                    hb.nacks,
                ));
            }
            m.push(MetricDelta::guest_u64(
                "spatial.links",
                sa.links.len() as u64,
                sb.links.len() as u64,
            ));
            for (la, lb) in sa.links.iter().zip(&sb.links) {
                let tag = format!("spatial.link[{}]", la.label);
                m.push(MetricDelta::guest_u64(
                    format!("{tag}.busy"),
                    la.busy,
                    lb.busy,
                ));
                m.push(MetricDelta::guest_u64(
                    format!("{tag}.msgs"),
                    la.msgs,
                    lb.msgs,
                ));
                m.push(MetricDelta::guest_u64(
                    format!("{tag}.bytes"),
                    la.bytes,
                    lb.bytes,
                ));
                m.push(MetricDelta::guest_u64(
                    format!("{tag}.retx"),
                    la.retx,
                    lb.retx,
                ));
            }
        }
        (None, None) => {}
        (sa, sb) => m.push(MetricDelta::guest_str(
            "spatial",
            if sa.is_some() { "present" } else { "absent" },
            if sb.is_some() { "present" } else { "absent" },
        )),
    }

    // Wall clock: gated only when both sides profiled themselves with the
    // same engine and worker count (otherwise the populations are not
    // comparable).
    let (wall, wall_note) = match (&a.host, &b.host) {
        (Some(ha), Some(hb)) if ha.engine == hb.engine && ha.workers == hb.workers => (
            Some(WallDelta::judge(
                ha.wall_ns,
                hb.wall_ns,
                opts.tolerance_frac(),
            )),
            None,
        ),
        (Some(ha), Some(hb)) => (
            None,
            Some(format!(
                "engine/workers differ ({}/{} vs {}/{})",
                ha.engine, ha.workers, hb.engine, hb.workers
            )),
        ),
        _ => (None, Some("host profile missing on one side".to_string())),
    };
    ReportDiff {
        metrics: m,
        wall,
        wall_note,
    }
}

// -- BENCH_report.json diffing ----------------------------------------------

/// One row-level delta of a bench-report diff.
#[derive(Clone, Debug)]
pub struct BenchRowDiff {
    /// Row identity: `model app nodes ways workers`.
    pub key: String,
    /// Metric deltas for this row.
    pub metrics: Vec<MetricDelta>,
    /// Row missing on one side (`Some("baseline"/"candidate")`).
    pub only_in: Option<String>,
}

/// Result of diffing two `BENCH_report.json` documents.
#[derive(Clone, Debug, Default)]
pub struct BenchDiff {
    /// Per-row deltas, baseline order (then candidate-only rows).
    pub rows: Vec<BenchRowDiff>,
    /// Whether wall-clock columns were gated (host core counts matched).
    pub wall_gated: bool,
    /// Note explaining ungated wall clocks.
    pub wall_note: Option<String>,
}

impl BenchDiff {
    /// Mismatching guest metrics (including rows present on one side
    /// only).
    pub fn has_guest_drift(&self) -> bool {
        self.rows.iter().any(|r| {
            r.only_in.is_some()
                || r.metrics
                    .iter()
                    .any(|m| m.kind == DeltaKind::Guest && !m.ok)
        })
    }

    /// Whether any gated wall-clock column regressed beyond tolerance.
    pub fn has_wall_regression(&self) -> bool {
        self.rows
            .iter()
            .any(|r| r.metrics.iter().any(|m| m.kind == DeltaKind::Wall && !m.ok))
    }

    /// Gate verdict: `Err` describes every failure.
    pub fn gate(&self) -> Result<(), String> {
        let mut fails = Vec::new();
        for r in &self.rows {
            if let Some(side) = &r.only_in {
                fails.push(format!("row [{}] only in {side}", r.key));
            }
            for m in &r.metrics {
                if m.ok {
                    continue;
                }
                match m.kind {
                    DeltaKind::Guest => fails.push(format!(
                        "guest drift: [{}] {} {} -> {}",
                        r.key, m.name, m.a, m.b
                    )),
                    DeltaKind::Wall => fails.push(format!(
                        "wall-clock regression: [{}] {} {} -> {}",
                        r.key, m.name, m.a, m.b
                    )),
                    DeltaKind::Info => {}
                }
            }
        }
        if fails.is_empty() {
            Ok(())
        } else {
            Err(fails.join("\n"))
        }
    }

    /// Render as aligned text.
    pub fn render_text(&self) -> String {
        self.render(false)
    }

    /// Render as Markdown (the CI artifact).
    pub fn render_markdown(&self) -> String {
        self.render(true)
    }

    fn render(&self, md: bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str(if md {
            "## Bench report diff\n\n"
        } else {
            "== Bench report diff\n"
        });
        let bad: usize = self
            .rows
            .iter()
            .filter(|r| r.only_in.is_some() || r.metrics.iter().any(|m| !m.ok))
            .count();
        let _ = writeln!(
            out,
            "{} rows compared, {bad} with failures{}",
            self.rows.len(),
            if bad == 0 {
                " (guest metrics bit-identical)"
            } else {
                ""
            }
        );
        if let (false, Some(note)) = (&self.wall_gated, &self.wall_note) {
            let _ = writeln!(out, "wall-clock columns not gated: {note}");
        }
        if md {
            out.push_str(
                "\n| row | metric | baseline | candidate | verdict |\n|---|---|---|---|---|\n",
            );
        }
        for r in &self.rows {
            if let Some(side) = &r.only_in {
                if md {
                    let _ = writeln!(out, "| {} | (row) | | | only in {side} |", r.key);
                } else {
                    let _ = writeln!(out, "  MISSING [{:<28}] only in {side}", r.key);
                }
                continue;
            }
            for m in &r.metrics {
                let verdict = match (m.kind, m.ok) {
                    (DeltaKind::Guest, false) => "DRIFT",
                    (DeltaKind::Wall, false) => "WALL-REGRESSION",
                    (DeltaKind::Wall, true) => "ok (wall)",
                    _ if m.ok => "ok",
                    _ => "note",
                };
                if !m.ok || md {
                    if md {
                        let _ = writeln!(
                            out,
                            "| {} | {} | {} | {} | {verdict} |",
                            r.key, m.name, m.a, m.b
                        );
                    } else {
                        let _ = writeln!(
                            out,
                            "  {verdict:<16} [{:<28}] {:<18} {} -> {}",
                            r.key, m.name, m.a, m.b
                        );
                    }
                }
            }
        }
        out
    }
}

/// Extract the row array from a bench report document: either the
/// schema-versioned object (`{"schema_version":1,"rows":[...]}`) or the
/// legacy bare array.
fn bench_rows(doc: &JsonValue) -> Result<&[JsonValue], String> {
    match doc {
        JsonValue::Arr(rows) => Ok(rows),
        JsonValue::Obj(_) => {
            let schema = doc
                .get("schema_version")
                .and_then(JsonValue::as_u64)
                .ok_or("bench report object missing schema_version")?;
            if schema > BENCH_SCHEMA_VERSION as u64 {
                return Err(format!("unsupported bench schema {schema}"));
            }
            doc.get("rows")
                .and_then(JsonValue::as_arr)
                .ok_or_else(|| "bench report missing rows".to_string())
        }
        _ => Err("bench report is neither an object nor an array".to_string()),
    }
}

/// Worker count of a bench row; legacy rows predate the column and were
/// all single-worker.
fn row_workers(row: &JsonValue) -> u64 {
    row.get("workers").and_then(JsonValue::as_u64).unwrap_or(1)
}

/// Row identity *without* the worker count: the guest point being
/// measured.
fn row_point(row: &JsonValue) -> Result<String, String> {
    Ok(format!(
        "{} {} n={} w={}",
        row.get("model")
            .and_then(JsonValue::as_str)
            .ok_or("row missing model")?,
        row.get("app")
            .and_then(JsonValue::as_str)
            .ok_or("row missing app")?,
        row.get("nodes")
            .and_then(JsonValue::as_u64)
            .ok_or("row missing nodes")?,
        row.get("ways")
            .and_then(JsonValue::as_u64)
            .ok_or("row missing ways")?,
    ))
}

fn row_key(row: &JsonValue) -> Result<String, String> {
    // The worker count is part of the row's identity: wall clocks (and
    // the imbalance column, which is `null` single-worker and a number
    // otherwise) are only comparable within matching worker counts.
    Ok(format!("{} workers={}", row_point(row)?, row_workers(row)))
}

/// Message for a row present on `side` only: when the *other* side does
/// measure the same guest point, just at different worker counts, say so —
/// a 1→2-worker transition is a measurement-population change, not a
/// missing benchmark.
fn side_note(side: &str, row: &JsonValue, other: &[JsonValue]) -> String {
    let point = row_point(row).unwrap_or_default();
    let other_counts: Vec<u64> = other
        .iter()
        .filter(|r| row_point(r).as_deref() == Ok(point.as_str()))
        .map(row_workers)
        .collect();
    if other_counts.is_empty() {
        side.to_string()
    } else {
        let opposite = if side == "baseline" {
            "candidate"
        } else {
            "baseline"
        };
        format!(
            "{side} at this worker count ({opposite} measures the same point at \
             workers={other_counts:?}; rows are compared only within matching \
             worker counts)"
        )
    }
}

/// Diff two `BENCH_report.json` documents (baseline `a`, candidate `b`).
///
/// Rows are matched by `(model, app, nodes, ways, workers)` — worker
/// counts are measurement populations, so a point measured single-worker
/// in the baseline and 2-worker in the candidate is reported as a
/// population change rather than compared column-for-column (the
/// `imbalance` column is `null` single-worker and a number otherwise).
/// Guest columns (`cycles`, `ipc`, `remote_miss_*`, and the config
/// `fingerprint` when both sides carry one) must match exactly.
/// Wall-clock columns (`serial_secs`, `parallel_secs`) are gated against
/// the tolerance only when both documents report the same `host_cores`.
pub fn diff_bench_reports(a: &str, b: &str, opts: &DiffOptions) -> Result<BenchDiff, String> {
    let da = json::parse(a).map_err(|e| format!("baseline: {e}"))?;
    let db = json::parse(b).map_err(|e| format!("candidate: {e}"))?;
    let rows_a = bench_rows(&da)?;
    let rows_b = bench_rows(&db)?;
    let cores = |rows: &[JsonValue]| {
        rows.first()
            .and_then(|r| r.get("host_cores"))
            .and_then(JsonValue::as_u64)
    };
    let (ca, cb) = (cores(rows_a), cores(rows_b));
    let wall_gated = ca.is_some() && ca == cb;
    let wall_note = if wall_gated {
        None
    } else {
        Some(format!(
            "host_cores differ or missing (baseline {ca:?}, candidate {cb:?}); \
             wall clocks from different hosts are not comparable"
        ))
    };
    let tol = opts.tolerance_frac();

    let mut rows = Vec::new();
    for ra in rows_a {
        let key = row_key(ra)?;
        let Some(rb) = rows_b
            .iter()
            .find(|r| row_key(r).as_deref() == Ok(key.as_str()))
        else {
            rows.push(BenchRowDiff {
                key,
                metrics: Vec::new(),
                only_in: Some(side_note("baseline", ra, rows_b)),
            });
            continue;
        };
        let mut metrics = Vec::new();
        let num = |row: &JsonValue, k: &str| row.get(k).and_then(JsonValue::as_f64);
        // Guest columns: exact.
        for col in ["cycles", "ipc", "remote_miss_mean", "remote_miss_p95"] {
            let (va, vb) = (num(ra, col), num(rb, col));
            metrics.push(MetricDelta {
                name: col.to_string(),
                a: va.map_or("-".into(), |v| format!("{v}")),
                b: vb.map_or("-".into(), |v| format!("{v}")),
                ok: va.is_some() && va == vb,
                kind: DeltaKind::Guest,
            });
        }
        // Config fingerprint: exact when both sides have it (legacy
        // baselines predate the column).
        let fp = |row: &JsonValue| {
            row.get("fingerprint")
                .and_then(JsonValue::as_str)
                .map(str::to_string)
        };
        if let (Some(fa), Some(fb)) = (fp(ra), fp(rb)) {
            metrics.push(MetricDelta {
                ok: fa == fb,
                name: "fingerprint".to_string(),
                a: fa,
                b: fb,
                kind: DeltaKind::Guest,
            });
        }
        // Spatial peak columns: exact guest state when both sides carry
        // them (legacy baselines predate them). `home_occ_peak_node` is
        // `null` on a zero-node document, so compare serialized values
        // rather than numbers.
        if ra.get("link_util_peak").is_some() && rb.get("link_util_peak").is_some() {
            for col in ["home_occ_peak_node", "link_util_peak"] {
                let s = |row: &JsonValue| match row.get(col) {
                    Some(JsonValue::Null) => Some("null".to_string()),
                    Some(v) => v.as_f64().map(|f| format!("{f}")),
                    None => None,
                };
                let (va, vb) = (s(ra), s(rb));
                metrics.push(MetricDelta {
                    name: col.to_string(),
                    a: va.clone().unwrap_or_else(|| "-".into()),
                    b: vb.clone().unwrap_or_else(|| "-".into()),
                    ok: va.is_some() && va == vb,
                    kind: DeltaKind::Guest,
                });
            }
        }
        // Wall columns: tolerance-gated, same-host only.
        for col in ["serial_secs", "parallel_secs"] {
            if let (Some(va), Some(vb)) = (num(ra, col), num(rb, col)) {
                let regression = wall_gated && va > 0.0 && vb > va * (1.0 + tol);
                metrics.push(MetricDelta {
                    name: col.to_string(),
                    a: format!("{va}"),
                    b: format!("{vb}"),
                    ok: !regression,
                    kind: if wall_gated {
                        DeltaKind::Wall
                    } else {
                        DeltaKind::Info
                    },
                });
            }
        }
        rows.push(BenchRowDiff {
            key,
            metrics,
            only_in: None,
        });
    }
    for rb in rows_b {
        let key = row_key(rb)?;
        if !rows.iter().any(|r| r.key == key) {
            rows.push(BenchRowDiff {
                key,
                metrics: Vec::new(),
                only_in: Some(side_note("candidate", rb, rows_a)),
            });
        }
    }
    Ok(BenchDiff {
        rows,
        wall_gated,
        wall_note,
    })
}

/// Build a [`NoiseBand`] by replaying one row's wall-clock across bench
/// documents (replicates of the same run).
pub fn noise_band_from_rows(rows: &[BenchRow]) -> NoiseBand {
    NoiseBand::from_wall_ns(
        &rows
            .iter()
            .flat_map(|r| [r.serial_secs, r.parallel_secs])
            .filter(|s| *s > 0.0)
            .map(|s| (s * 1e9) as u64)
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_pair() -> (ParsedReport, ParsedReport) {
        let e = smtp_core::ExperimentConfig::quick(
            smtp_types::MachineModel::SMTp,
            smtp_workloads::AppKind::Fft,
            2,
            1,
        );
        let a = smtp_core::run_experiment(&e);
        let b = smtp_core::run_experiment(&e);
        let pa = ParsedReport::from_json(&smtp_core::Report::new(&a).json()).unwrap();
        let pb = ParsedReport::from_json(&smtp_core::Report::new(&b).json()).unwrap();
        (pa, pb)
    }

    #[test]
    fn identical_runs_have_zero_guest_delta() {
        let (a, b) = report_pair();
        let d = diff_reports(&a, &b, &DiffOptions::default());
        assert!(!d.has_guest_drift(), "{}", d.render_text());
        assert!(d.gate().is_ok());
        assert!(d.render_text().contains("bit-identical"));
    }

    #[test]
    fn perturbed_cycles_is_guest_drift() {
        let (a, mut b) = report_pair();
        b.cycles += 1;
        let d = diff_reports(&a, &b, &DiffOptions::default());
        assert!(d.has_guest_drift());
        let gate = d.gate().unwrap_err();
        assert!(gate.contains("cycles"), "{gate}");
        assert!(d.render_markdown().contains("DRIFT"));
    }

    #[test]
    fn noise_band_widens_tolerance() {
        let band = NoiseBand::from_wall_ns(&[1_000_000, 1_500_000, 1_200_000]);
        assert!(band.spread_frac() > 0.25);
        let opts = DiffOptions {
            wall_tol_frac: 0.1,
            noise: Some(band),
        };
        assert!(opts.tolerance_frac() > 0.25);
        // Single-sample bands contribute nothing.
        assert_eq!(NoiseBand::from_wall_ns(&[5]).spread_frac(), 0.0);
    }

    #[test]
    fn wall_regression_detected_within_same_population() {
        let (mut a, mut b) = report_pair();
        a.host = Some(smtp_core::ParsedHostProfile {
            engine: "serial".into(),
            workers: 1,
            wall_ns: 1_000_000,
            ..Default::default()
        });
        b.host = Some(smtp_core::ParsedHostProfile {
            engine: "serial".into(),
            workers: 1,
            wall_ns: 2_000_000,
            ..Default::default()
        });
        let d = diff_reports(&a, &b, &DiffOptions::default());
        assert!(d.has_wall_regression());
        assert!(!d.has_guest_drift());

        // Different engines: reported, never gated.
        b.host.as_mut().unwrap().engine = "parallel".into();
        let d = diff_reports(&a, &b, &DiffOptions::default());
        assert!(d.wall.is_none());
        assert!(d.wall_note.is_some());
    }

    #[test]
    fn spatial_drift_fails_the_gate() {
        let (a, mut b) = report_pair();
        // Reports carry the section from schema v4 on (home/link heat is
        // always collected even with the line tracker off).
        assert!(a.spatial.is_some(), "v4 reports must carry spatial");
        let sp = b.spatial.as_mut().unwrap();
        assert!(!sp.links.is_empty(), "2-node run must use the NoC");
        sp.links[0].busy += 1;
        let d = diff_reports(&a, &b, &DiffOptions::default());
        assert!(d.has_guest_drift());
        let gate = d.gate().unwrap_err();
        assert!(gate.contains("spatial.link["), "{gate}");

        // Presence mismatch between the two sides is itself drift.
        b.spatial = None;
        let d = diff_reports(&a, &b, &DiffOptions::default());
        assert!(d.gate().unwrap_err().contains("spatial"), "presence gate");

        // Two pre-spatial documents compare clean.
        let mut a2 = a.clone();
        a2.spatial = None;
        let d = diff_reports(&a2, &b, &DiffOptions::default());
        assert!(!d.has_guest_drift(), "{}", d.render_text());
    }

    #[test]
    fn bench_diff_gates_spatial_peak_columns() {
        let with_peaks = BENCH_A.replace(
            "\"host_cores\":1",
            "\"home_occ_peak_node\":2,\"link_util_peak\":0.0813,\"host_cores\":1",
        );
        let same = diff_bench_reports(&with_peaks, &with_peaks, &DiffOptions::default()).unwrap();
        assert!(same.gate().is_ok(), "{}", same.render_text());

        let moved = with_peaks.replace("\"link_util_peak\":0.0813", "\"link_util_peak\":0.0911");
        let d = diff_bench_reports(&with_peaks, &moved, &DiffOptions::default()).unwrap();
        assert!(d.has_guest_drift());
        assert!(d.gate().unwrap_err().contains("link_util_peak"));

        let hopped = with_peaks.replace("\"home_occ_peak_node\":2", "\"home_occ_peak_node\":null");
        let d = diff_bench_reports(&with_peaks, &hopped, &DiffOptions::default()).unwrap();
        assert!(d.gate().unwrap_err().contains("home_occ_peak_node"));

        // Legacy baseline without the columns: not compared, no drift.
        let d = diff_bench_reports(BENCH_A, &with_peaks, &DiffOptions::default()).unwrap();
        assert!(!d.has_guest_drift(), "{}", d.render_text());
    }

    const BENCH_A: &str = r#"{"schema_version":1,"rows":[
      {"model":"SMTp","app":"FFT","nodes":4,"ways":2,"cycles":1000,"ipc":1.5,
       "remote_miss_mean":10.0,"remote_miss_p95":20,"fingerprint":"00000000000000aa",
       "serial_secs":1.0,"parallel_secs":1.0,"host_cores":1}]}"#;

    #[test]
    fn bench_diff_detects_cycle_drift_and_wall_regression() {
        let same = diff_bench_reports(BENCH_A, BENCH_A, &DiffOptions::default()).unwrap();
        assert!(!same.has_guest_drift() && !same.has_wall_regression());
        assert!(same.gate().is_ok());

        let drift = BENCH_A.replace("\"cycles\":1000", "\"cycles\":1001");
        let d = diff_bench_reports(BENCH_A, &drift, &DiffOptions::default()).unwrap();
        assert!(d.has_guest_drift());
        assert!(d.gate().unwrap_err().contains("cycles"));

        let slow = BENCH_A.replace("\"parallel_secs\":1.0", "\"parallel_secs\":9.0");
        let d = diff_bench_reports(BENCH_A, &slow, &DiffOptions::default()).unwrap();
        assert!(!d.has_guest_drift());
        assert!(d.has_wall_regression());

        // Different host cores: wall clocks reported, not gated.
        let other_host = slow.replace("\"host_cores\":1", "\"host_cores\":8");
        let d = diff_bench_reports(BENCH_A, &other_host, &DiffOptions::default()).unwrap();
        assert!(!d.has_wall_regression());
        assert!(d.wall_note.is_some());
    }

    /// A guest point measured single-worker in the baseline and 2-worker
    /// in the candidate (same fingerprint) is a population change: the
    /// `imbalance` column flips from `null` to a number, so the columns
    /// must not be compared — and the gate message must say exactly what
    /// moved instead of reporting a bare missing row.
    #[test]
    fn bench_diff_compares_only_within_matching_worker_counts() {
        let two_workers = BENCH_A.replace(
            "\"host_cores\":1",
            "\"workers\":2,\"imbalance\":1.40,\"host_cores\":1",
        );
        let d = diff_bench_reports(BENCH_A, &two_workers, &DiffOptions::default()).unwrap();
        // No column comparison happened across the population change.
        assert!(d.rows.iter().all(|r| r.metrics.is_empty()));
        let gate = d.gate().unwrap_err();
        assert!(
            gate.contains("workers=1") && gate.contains("workers=[2]"),
            "gate must name both worker counts: {gate}"
        );
        assert!(
            gate.contains("matching worker counts"),
            "gate must explain the matching rule: {gate}"
        );

        // Same worker count on both sides: compared as usual.
        let d = diff_bench_reports(&two_workers, &two_workers, &DiffOptions::default()).unwrap();
        assert!(d.gate().is_ok());
        assert!(!d.rows.iter().any(|r| r.only_in.is_some()));
    }

    #[test]
    fn bench_diff_flags_missing_rows_and_legacy_arrays() {
        let legacy = r#"[{"model":"SMTp","app":"FFT","nodes":4,"ways":2,"cycles":1000,
          "ipc":1.5,"remote_miss_mean":10.0,"remote_miss_p95":20,"host_cores":1}]"#;
        let d = diff_bench_reports(legacy, BENCH_A, &DiffOptions::default()).unwrap();
        // Same row key on both sides; legacy has no fingerprint column, so
        // the fingerprint is not compared.
        assert!(!d.rows.iter().any(|r| r.only_in.is_some()));
        assert!(!d.has_guest_drift());

        let empty = "[]";
        let d = diff_bench_reports(empty, BENCH_A, &DiffOptions::default()).unwrap();
        assert!(d.has_guest_drift());
        assert!(d.gate().unwrap_err().contains("only in candidate"));
    }
}
