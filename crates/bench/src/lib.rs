//! Shared experiment-harness helpers for the paper-artifact benches.
//!
//! Every table and figure of the paper's evaluation (§4) has a bench
//! target in `benches/` that re-runs the corresponding simulations and
//! prints the same rows/series the paper reports. Absolute numbers differ
//! from the paper (scaled problems, synthetic kernels — DESIGN.md §2/§7);
//! the *shapes* are the reproduction target.
//!
//! Environment knobs:
//!
//! * `SMTP_SCALE` — workload scale (default 0.5); lower for quick runs.
//! * `SMTP_NODES_CAP` — cap the largest machine size (for smoke runs).

use smtp_core::{run_experiment, ExperimentConfig, RunStats};
use smtp_types::MachineModel;
use smtp_workloads::AppKind;
use std::time::Instant;

pub use smtp_core::experiment::default_scale;

/// Cap on machine sizes (env `SMTP_NODES_CAP`, default unlimited).
pub fn nodes_cap() -> usize {
    std::env::var("SMTP_NODES_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX)
}

/// Run one point, echoing progress to stderr.
pub fn run_point(
    model: MachineModel,
    app: AppKind,
    nodes: usize,
    ways: usize,
    cpu_ghz: f64,
) -> RunStats {
    let mut e = ExperimentConfig::new(model, app, nodes, ways);
    e.cpu_ghz = cpu_ghz;
    let t = Instant::now();
    let r = run_experiment(&e);
    eprintln!(
        "  [{} {} n={} w={} @{}GHz] {} cycles ({:.1}s)",
        model.label(),
        app.name(),
        nodes,
        ways,
        cpu_ghz,
        r.cycles,
        t.elapsed().as_secs_f64()
    );
    r
}

/// Print one paper-style normalized-execution-time figure: for each
/// application, five bars (machine models) split into memory-stall and
/// non-memory components, normalized to `Base`.
pub fn print_model_figure(title: &str, nodes: usize, ways: usize, cpu_ghz: f64) {
    println!("\n=== {title} ===");
    println!(
        "{:6} | {}",
        "app",
        MachineModel::ALL
            .map(|m| format!("{:>16}", m.label()))
            .join(" ")
    );
    println!("{:6} | {}", "", "   total(mem+cpu)".repeat(5));
    for app in AppKind::ALL {
        let runs: Vec<RunStats> = MachineModel::ALL
            .iter()
            .map(|&m| run_point(m, app, nodes, ways, cpu_ghz))
            .collect();
        let base = runs[0].cycles as f64;
        let cells: Vec<String> = runs
            .iter()
            .map(|r| {
                let total = r.cycles as f64 / base;
                let mem = r.memory_stall_cycles / base;
                format!("{:>5.3}({:.2}+{:.2})", total, mem, total - mem)
            })
            .collect();
        println!("{:6} | {}", app.name(), cells.join(" "));
    }
}

/// Self-relative speedup of `model` on `nodes` with 1/2/4 application
/// threads, relative to its own 1-node 1-way execution (paper Tables 5/6).
pub fn print_speedup_table(title: &str, model: MachineModel, nodes: usize) {
    println!("\n=== {title} ===");
    println!("{:6} | {:>7} {:>7} {:>7}", "app", "1-way", "2-way", "4-way");
    for app in AppKind::ALL {
        let uni = run_point(model, app, 1, 1, 2.0).cycles as f64;
        let mut row = format!("{:6} |", app.name());
        for ways in [1, 2, 4] {
            let c = run_point(model, app, nodes, ways, 2.0).cycles as f64;
            row.push_str(&format!(" {:>7.2}", uni / c));
        }
        println!("{row}");
    }
}

/// Shorthand percentage formatter.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// A minimal dependency-free micro-benchmark harness: warms up, then times
/// `iters` calls of `f` per sample over `samples` samples and prints the
/// best sample as ns/iter (best-of-N rejects scheduler noise the way
/// statistical harnesses reject outliers).
pub fn bench_micro<R>(name: &str, iters: u64, mut f: impl FnMut() -> R) -> f64 {
    const SAMPLES: u32 = 7;
    for _ in 0..iters / 4 + 1 {
        std::hint::black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let ns = t.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(ns);
    }
    println!("{name:<40} {best:>12.1} ns/iter");
    best
}
