//! Shared experiment-harness helpers for the paper-artifact benches.
//!
//! Every table and figure of the paper's evaluation (§4) has a bench
//! target in `benches/` that re-runs the corresponding simulations and
//! prints the same rows/series the paper reports. Absolute numbers differ
//! from the paper (scaled problems, synthetic kernels — DESIGN.md §2/§7);
//! the *shapes* are the reproduction target.
//!
//! Environment knobs:
//!
//! * `SMTP_SCALE` — workload scale (default 0.5); lower for quick runs.
//! * `SMTP_NODES_CAP` — cap the largest machine size (for smoke runs).
//! * `SMTP_ENGINE` — execution engine for the figure benches
//!   (`serial`|`parallel`, default `parallel`; guest results are
//!   bit-identical, the choice is wall-clock only).

use smtp_core::{build_system, run_experiment, EngineKind, ExperimentConfig, RunStats};
use smtp_trace::HostProfile;
use smtp_types::MachineModel;
use smtp_workloads::AppKind;
use std::time::Instant;

pub mod archive;
pub mod diff;

pub use archive::{Archive, ArchiveEntry, Query, RunKey, ARCHIVE_SCHEMA_VERSION};
pub use diff::{
    diff_bench_reports, diff_reports, BenchDiff, DiffOptions, MetricDelta, NoiseBand, ReportDiff,
};
pub use smtp_core::experiment::default_scale;

/// Schema version of `BENCH_report.json`. Version 1 wraps the legacy bare
/// row array in `{"schema_version":1,"rows":[...]}` and adds per-row
/// config `fingerprint` columns; readers still accept the legacy array.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Cap on machine sizes (env `SMTP_NODES_CAP`, default unlimited).
pub fn nodes_cap() -> usize {
    std::env::var("SMTP_NODES_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX)
}

/// Execution engine the figure benches run on (env `SMTP_ENGINE`,
/// default parallel). Guest results are bit-identical on either engine —
/// the `engine_equivalence` grid enforces it — so the figures are
/// unchanged; the parallel default just regenerates them faster on
/// multi-core hosts.
pub fn bench_engine() -> EngineKind {
    std::env::var("SMTP_ENGINE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(EngineKind::Parallel)
}

/// Run one point, echoing progress to stderr.
pub fn run_point(
    model: MachineModel,
    app: AppKind,
    nodes: usize,
    ways: usize,
    cpu_ghz: f64,
) -> RunStats {
    let mut e = ExperimentConfig::new(model, app, nodes, ways);
    e.cpu_ghz = cpu_ghz;
    e.engine = bench_engine();
    let t = Instant::now();
    let r = run_experiment(&e);
    eprintln!(
        "  [{} {} n={} w={} @{}GHz] {} cycles ({:.1}s)",
        model.label(),
        app.name(),
        nodes,
        ways,
        cpu_ghz,
        r.cycles,
        t.elapsed().as_secs_f64()
    );
    r
}

/// Run one experiment point on the given engine with host telemetry on,
/// returning the stats, the wall-clock seconds the run took, and the
/// engine's [`HostProfile`] (wall-clock attribution, barrier-wait share,
/// idle-skip efficiency, worker imbalance).
pub fn timed_point(
    e: &ExperimentConfig,
    engine: EngineKind,
) -> (RunStats, f64, Option<HostProfile>) {
    let mut e = e.clone();
    e.engine = engine;
    let mut sys = build_system(&e);
    sys.enable_host_telemetry();
    let t = Instant::now();
    let r = sys
        .run_with(e.max_cycles, engine)
        .unwrap_or_else(|err| panic!("{err}"));
    let wall = t.elapsed().as_secs_f64();
    eprintln!(
        "  [{} {} n={} w={} engine={engine}] {} cycles ({wall:.2}s)",
        e.model.label(),
        e.app.name(),
        e.nodes,
        e.ways,
        r.cycles,
    );
    (r, wall, sys.take_host_profile())
}

/// Print one paper-style normalized-execution-time figure: for each
/// application, five bars (machine models) split into memory-stall and
/// non-memory components, normalized to `Base`.
pub fn print_model_figure(title: &str, nodes: usize, ways: usize, cpu_ghz: f64) {
    println!("\n=== {title} ===");
    println!(
        "{:6} | {}",
        "app",
        MachineModel::ALL
            .map(|m| format!("{:>16}", m.label()))
            .join(" ")
    );
    println!("{:6} | {}", "", "   total(mem+cpu)".repeat(5));
    for app in AppKind::ALL {
        let runs: Vec<RunStats> = MachineModel::ALL
            .iter()
            .map(|&m| run_point(m, app, nodes, ways, cpu_ghz))
            .collect();
        let base = runs[0].cycles as f64;
        let cells: Vec<String> = runs
            .iter()
            .map(|r| {
                let total = r.cycles as f64 / base;
                let mem = r.memory_stall_cycles / base;
                format!("{:>5.3}({:.2}+{:.2})", total, mem, total - mem)
            })
            .collect();
        println!("{:6} | {}", app.name(), cells.join(" "));
    }
}

/// Self-relative speedup of `model` on `nodes` with 1/2/4 application
/// threads, relative to its own 1-node 1-way execution (paper Tables 5/6).
pub fn print_speedup_table(title: &str, model: MachineModel, nodes: usize) {
    println!("\n=== {title} ===");
    println!("{:6} | {:>7} {:>7} {:>7}", "app", "1-way", "2-way", "4-way");
    for app in AppKind::ALL {
        let uni = run_point(model, app, 1, 1, 2.0).cycles as f64;
        let mut row = format!("{:6} |", app.name());
        for ways in [1, 2, 4] {
            let c = run_point(model, app, nodes, ways, 2.0).cycles as f64;
            row.push_str(&format!(" {:>7.2}", uni / c));
        }
        println!("{row}");
    }
}

/// Shorthand percentage formatter.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// One row of the machine-readable benchmark report (`BENCH_report.json`).
#[derive(Clone, Debug)]
pub struct BenchRow {
    /// Machine model label.
    pub model: String,
    /// Application name.
    pub app: String,
    /// Machine size.
    pub nodes: usize,
    /// Application threads per node.
    pub ways: usize,
    /// Parallel execution time.
    pub cycles: u64,
    /// Committed application instructions per cycle.
    pub ipc: f64,
    /// Mean remote L2 miss latency in cycles (0 when none occurred).
    pub remote_miss_mean: f64,
    /// 95th-percentile remote L2 miss latency in cycles.
    pub remote_miss_p95: u64,
    /// Wall-clock seconds on the serial reference engine (0 when the
    /// point was only run once).
    pub serial_secs: f64,
    /// Wall-clock seconds on the parallel epoch engine.
    pub parallel_secs: f64,
    /// Simulator speedup: `serial_secs / parallel_secs` (1.0 when the
    /// point was only run once).
    pub speedup: f64,
    /// Worker threads the parallel engine used (1 when the point was only
    /// run serially).
    pub workers: usize,
    /// Percentage of parallel-worker wall-clock spent waiting at epoch
    /// barriers (host telemetry).
    pub barrier_wait_pct: f64,
    /// Mean per-epoch owned-node tick imbalance across workers
    /// (`max/mean`; 1.0 = perfectly balanced). `None` — serialized as
    /// JSON `null` — when the point ran single-worker: imbalance across
    /// one worker is not a meaningful quantity.
    pub imbalance: Option<f64>,
    /// Percentage of node-cycles the parallel engine skipped as provably
    /// idle instead of ticking.
    pub skip_efficiency_pct: f64,
    /// Deterministic [`ExperimentConfig::fingerprint`] of the point's
    /// guest configuration (0 when the row was built from bare
    /// [`RunStats`] without a config in hand).
    pub fingerprint: u64,
    /// Home node with the peak protocol-occupancy fraction (`None` —
    /// serialized as JSON `null` — when the run reported no home heat,
    /// e.g. a row rebuilt from a pre-spatial archive).
    pub home_occ_peak_node: Option<u64>,
    /// Busy fraction of the hottest NoC link (0 when no traffic flowed or
    /// the row predates the spatial section).
    pub link_util_peak: f64,
}

impl BenchRow {
    /// Extract the report row from one run's statistics.
    pub fn from_stats(r: &RunStats) -> BenchRow {
        // Classes 2/3 are remote read / remote read-exclusive.
        let mut remote = r.latency.end_to_end[2].clone();
        remote.merge(&r.latency.end_to_end[3]);
        BenchRow {
            model: r.model.label().to_string(),
            app: r.app.to_string(),
            nodes: r.nodes,
            ways: r.ways,
            cycles: r.cycles,
            ipc: r.ipc(),
            remote_miss_mean: remote.mean(),
            remote_miss_p95: remote.percentile(95.0),
            serial_secs: 0.0,
            parallel_secs: 0.0,
            speedup: 1.0,
            workers: 1,
            barrier_wait_pct: 0.0,
            imbalance: None,
            skip_efficiency_pct: 0.0,
            fingerprint: 0,
            home_occ_peak_node: r.spatial.peak_home().map(|h| h.node as u64),
            link_util_peak: r.spatial.peak_link_util(),
        }
    }

    /// Report row from a serial/parallel engine pair over the same point
    /// (the stats are bit-identical; the wall clocks differ).
    pub fn from_engine_pair(r: &RunStats, serial_secs: f64, parallel_secs: f64) -> BenchRow {
        let mut row = BenchRow::from_stats(r);
        row.serial_secs = serial_secs;
        row.parallel_secs = parallel_secs;
        row.speedup = serial_secs / parallel_secs.max(1e-9);
        row
    }

    /// Fold the parallel run's host telemetry into the row: worker count,
    /// barrier-wait percentage, per-epoch imbalance and skip efficiency.
    /// Imbalance stays `None` for single-worker runs — a one-worker
    /// "max/mean" ratio is vacuously 1.0 and would only mislead readers.
    pub fn apply_host_profile(&mut self, h: &HostProfile) {
        self.workers = h.workers;
        self.barrier_wait_pct = 100.0 * h.barrier_wait_frac();
        self.imbalance = (h.workers > 1).then(|| h.imbalance_ratio());
        self.skip_efficiency_pct = 100.0 * h.skip_efficiency();
    }

    /// Rebuild a report row from a serial/parallel pair of **archived**
    /// runs of the same configuration — the path `bench_report` uses so
    /// the committed `BENCH_report.json` is provably derivable from the
    /// archive alone. Errors if the two entries disagree on any guest
    /// metric (that would be a determinism regression, not a usable
    /// pair).
    pub fn from_archive_pair(
        serial: &ArchiveEntry,
        parallel: &ArchiveEntry,
    ) -> Result<BenchRow, String> {
        let (a, b) = (&serial.report, &parallel.report);
        if serial.key.fingerprint != parallel.key.fingerprint {
            return Err(format!(
                "archive pair fingerprints differ: {:016x} vs {:016x}",
                serial.key.fingerprint, parallel.key.fingerprint
            ));
        }
        let d = diff::diff_reports(a, b, &DiffOptions::default());
        if d.has_guest_drift() {
            return Err(format!(
                "archived serial/parallel runs drifted:\n{}",
                d.gate().unwrap_err()
            ));
        }
        let remote = a
            .remote_miss
            .as_ref()
            .ok_or("archived report predates the remote_miss histogram (schema < 3)")?;
        let host_secs =
            |r: &smtp_core::ParsedReport| r.host.as_ref().map_or(0.0, |h| h.wall_ns as f64 / 1e9);
        let (serial_secs, parallel_secs) = (host_secs(a), host_secs(b));
        let mut row = BenchRow {
            model: a.model.clone(),
            app: a.app.clone(),
            nodes: a.nodes as usize,
            ways: a.ways as usize,
            cycles: a.cycles,
            ipc: a.ipc,
            remote_miss_mean: remote.mean,
            remote_miss_p95: remote.p95,
            serial_secs,
            parallel_secs,
            speedup: if parallel_secs > 0.0 {
                serial_secs / parallel_secs
            } else {
                1.0
            },
            workers: 1,
            barrier_wait_pct: 0.0,
            imbalance: None,
            skip_efficiency_pct: 0.0,
            fingerprint: serial.key.fingerprint,
            home_occ_peak_node: a.spatial.as_ref().and_then(|sp| sp.home_occ_peak_node),
            link_util_peak: a.spatial.as_ref().map_or(0.0, |sp| sp.link_util_peak),
        };
        if let Some(h) = &b.host {
            row.workers = h.workers as usize;
            row.barrier_wait_pct = 100.0 * h.barrier_wait_frac;
            row.imbalance = (h.workers > 1).then_some(h.imbalance_ratio);
            row.skip_efficiency_pct = 100.0 * h.skip_efficiency;
        }
        Ok(row)
    }
}

/// The 32-node smoke configuration shared by the `fig8_9_32node` bench and
/// `bench_report`'s 32-node row: the largest machine the paper evaluates,
/// shrunk to a scale that completes quickly. Node count is capped by
/// `SMTP_NODES_CAP` (rounded down to a power of two), and the parallel
/// engine is pinned to 2 workers so barrier/imbalance telemetry is
/// exercised even on single-core hosts.
pub fn fig32_smoke_config(app: AppKind) -> ExperimentConfig {
    let cap = nodes_cap().clamp(1, 32);
    let mut nodes = 1;
    while nodes * 2 <= cap {
        nodes *= 2;
    }
    let mut e = ExperimentConfig::new(MachineModel::SMTp, app, nodes, 2);
    e.cpu_ghz = 2.0;
    e.scale = default_scale().min(0.12);
    e.workers = Some(2);
    e
}

/// A scaling point *past* the paper: an SMTp bristled-hypercube machine
/// of `nodes` (any power of two up to the 128 the config supports),
/// 2-way, with the workload scaled down inversely with machine size so a
/// sweep's points complete in comparable wall time. Worker count is left
/// to the host (capped at the node count by the engine).
pub fn scaling_config(app: AppKind, nodes: usize) -> ExperimentConfig {
    let mut e = ExperimentConfig::new(MachineModel::SMTp, app, nodes, 2);
    e.cpu_ghz = 2.0;
    e.scale = (default_scale().min(0.12) * 32.0 / nodes as f64).max(0.02);
    e
}

/// Render `rows` as the schema-versioned bench report document
/// (hand-rolled, deterministic): `{"schema_version":1,"rows":[...]}`,
/// each row carrying its guest-config `fingerprint` (hex) and `null`
/// imbalance for single-worker points.
pub fn render_bench_report(rows: &[BenchRow]) -> String {
    use std::fmt::Write as _;
    // Wall-clock ratios only mean something relative to the host's
    // parallelism; stamp it so committed reports are comparable.
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut out = format!("{{\"schema_version\":{BENCH_SCHEMA_VERSION},\"rows\":[\n");
    for (i, r) in rows.iter().enumerate() {
        let imbalance = match r.imbalance {
            Some(v) => format!("{v:.2}"),
            None => "null".to_string(),
        };
        let peak_node = match r.home_occ_peak_node {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "  {{\"model\":\"{}\",\"app\":\"{}\",\"nodes\":{},\"ways\":{},\"cycles\":{},\
             \"ipc\":{:.4},\"remote_miss_mean\":{:.1},\"remote_miss_p95\":{},\
             \"serial_secs\":{:.3},\"parallel_secs\":{:.3},\"speedup\":{:.2},\
             \"workers\":{},\"barrier_wait_pct\":{:.1},\"imbalance\":{imbalance},\
             \"skip_efficiency_pct\":{:.1},\"fingerprint\":\"{:016x}\",\
             \"home_occ_peak_node\":{peak_node},\"link_util_peak\":{:.4},\
             \"host_cores\":{cores}}}",
            r.model,
            r.app,
            r.nodes,
            r.ways,
            r.cycles,
            r.ipc,
            r.remote_miss_mean,
            r.remote_miss_p95,
            r.serial_secs,
            r.parallel_secs,
            r.speedup,
            r.workers,
            r.barrier_wait_pct,
            r.skip_efficiency_pct,
            r.fingerprint,
            r.link_util_peak
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("]}\n");
    out
}

/// Write `rows` as the schema-versioned bench report to `path` — the
/// artifact CI uploads from benchmark runs and diffs against the
/// committed baseline.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_bench_report(path: &str, rows: &[BenchRow]) {
    std::fs::write(path, render_bench_report(rows)).expect("write bench report");
    eprintln!("wrote {path} ({} rows)", rows.len());
}

/// A minimal dependency-free micro-benchmark harness: warms up, then times
/// `iters` calls of `f` per sample over `samples` samples and prints the
/// best sample as ns/iter (best-of-N rejects scheduler noise the way
/// statistical harnesses reject outliers).
pub fn bench_micro<R>(name: &str, iters: u64, mut f: impl FnMut() -> R) -> f64 {
    const SAMPLES: u32 = 7;
    for _ in 0..iters / 4 + 1 {
        std::hint::black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let ns = t.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(ns);
    }
    println!("{name:<40} {best:>12.1} ns/iter");
    best
}
