//! Append-only cross-run experiment archive.
//!
//! Every run report ([`smtp_core::Report::json`]) can be appended to an
//! on-disk archive — one JSONL file, one envelope line per run — keyed by
//! a deterministic [`RunKey`]: the guest-shaping
//! [`ExperimentConfig::fingerprint`], the fault seed, the execution
//! engine, and an optional git revision. Guest results are deterministic
//! functions of `(fingerprint, seed)`, so two archive entries sharing
//! those key components must agree on every guest metric *exactly*; the
//! engine and git revision discriminate wall-clock populations.
//!
//! The store is append-only and self-describing: [`Archive::open`] scans
//! `runs.jsonl`, parses every envelope through the same hand-rolled
//! reader the diff engine uses ([`smtp_core::ParsedReport`]), and builds
//! an in-memory index. Corrupt or truncated trailing lines (a run killed
//! mid-append) are reported, not silently skipped.
//!
//! ```no_run
//! use smtp_bench::archive::{Archive, RunKey};
//! # let (e, report_json): (smtp_core::ExperimentConfig, String) = unimplemented!();
//! let mut ar = Archive::open("runs-archive").unwrap();
//! ar.append(&RunKey::for_experiment(&e), &report_json).unwrap();
//! let latest = ar.query().model("SMTp").app("FFT").latest_per_key();
//! ```

use smtp_core::{ExperimentConfig, JsonValue, ParsedReport};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Version of the archive envelope schema (the wrapper around each
/// report line).
pub const ARCHIVE_SCHEMA_VERSION: u32 = 1;

/// File inside the archive directory holding one envelope per line.
pub const ARCHIVE_FILE: &str = "runs.jsonl";

/// Identity of one archived run: everything needed to decide whether two
/// entries must be bit-identical (same fingerprint + seed) and which
/// wall-clock population they belong to (engine, git revision).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// [`ExperimentConfig::fingerprint`] of the run's configuration.
    pub fingerprint: u64,
    /// Fault seed (0 when fault injection is off — the simulator itself
    /// is seedless-deterministic).
    pub seed: u64,
    /// Execution engine label (`"serial"` / `"parallel"`).
    pub engine: String,
    /// Git revision the binary was built from, when known (taken from the
    /// `SMTP_GIT_REV` environment variable by
    /// [`RunKey::for_experiment`]).
    pub git_rev: Option<String>,
}

impl RunKey {
    /// Key for a run of `e`, reading the optional git revision from the
    /// `SMTP_GIT_REV` environment variable.
    pub fn for_experiment(e: &ExperimentConfig) -> RunKey {
        RunKey {
            fingerprint: e.fingerprint(),
            seed: e.faults.seed,
            engine: e.engine.to_string(),
            git_rev: std::env::var("SMTP_GIT_REV").ok().filter(|s| !s.is_empty()),
        }
    }

    /// The `(fingerprint, seed)` pair that pins guest results.
    pub fn guest_key(&self) -> (u64, u64) {
        (self.fingerprint, self.seed)
    }
}

/// One archived run: its key plus the parsed report (and the raw report
/// text for byte-exact re-rendering).
#[derive(Clone, Debug)]
pub struct ArchiveEntry {
    /// Run identity.
    pub key: RunKey,
    /// Parsed report.
    pub report: ParsedReport,
    /// The report exactly as archived.
    pub report_json: String,
    /// 1-based line number in `runs.jsonl`; later lines are newer.
    pub line: usize,
}

/// An append-only archive directory. See the [module docs](self).
#[derive(Debug)]
pub struct Archive {
    path: PathBuf,
    entries: Vec<ArchiveEntry>,
}

impl Archive {
    /// Open (creating if needed) the archive at `dir` and index every
    /// existing entry.
    pub fn open(dir: impl AsRef<Path>) -> Result<Archive, String> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let path = dir.join(ARCHIVE_FILE);
        let mut entries = Vec::new();
        if path.exists() {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            for (i, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let entry = parse_envelope(line)
                    .map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
                entries.push(ArchiveEntry {
                    line: i + 1,
                    ..entry
                });
            }
        }
        Ok(Archive {
            path: dir.to_path_buf(),
            entries,
        })
    }

    /// Directory the archive lives in.
    pub fn dir(&self) -> &Path {
        &self.path
    }

    /// Number of archived runs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the archive holds no runs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> &[ArchiveEntry] {
        &self.entries
    }

    /// Append one run. The report must be a valid
    /// [`smtp_core::Report::json`] document — it is parsed *before*
    /// anything is written, so the archive never contains a line its own
    /// reader rejects. The line is flushed before returning.
    pub fn append(&mut self, key: &RunKey, report_json: &str) -> Result<&ArchiveEntry, String> {
        let report = ParsedReport::from_json(report_json)
            .map_err(|e| format!("report rejected by parse-back: {e}"))?;
        let line_text = render_envelope(key, report_json);
        let path = self.path.join(ARCHIVE_FILE);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("open {}: {e}", path.display()))?;
        file.write_all(line_text.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| format!("append {}: {e}", path.display()))?;
        self.entries.push(ArchiveEntry {
            key: key.clone(),
            report,
            report_json: report_json.to_string(),
            line: self.entries.last().map_or(1, |e| e.line + 1),
        });
        Ok(self.entries.last().unwrap())
    }

    /// Start a query over the archive.
    pub fn query(&self) -> Query<'_> {
        Query {
            archive: self,
            model: None,
            app: None,
            nodes: None,
            ways: None,
            seed: None,
            engine: None,
            fingerprint: None,
        }
    }
}

/// A filter over archive entries, built by chaining and consumed by
/// [`Query::run`], [`Query::latest`] or [`Query::latest_per_key`].
#[derive(Clone, Debug)]
pub struct Query<'a> {
    archive: &'a Archive,
    model: Option<String>,
    app: Option<String>,
    nodes: Option<u64>,
    ways: Option<u64>,
    seed: Option<u64>,
    engine: Option<String>,
    fingerprint: Option<u64>,
}

impl<'a> Query<'a> {
    /// Keep runs of this machine model (label, e.g. `"SMTp"`).
    pub fn model(mut self, model: &str) -> Self {
        self.model = Some(model.to_string());
        self
    }

    /// Keep runs of this application (name as reported, e.g. `"FFT"`).
    pub fn app(mut self, app: &str) -> Self {
        self.app = Some(app.to_string());
        self
    }

    /// Keep runs of this machine size.
    pub fn nodes(mut self, nodes: u64) -> Self {
        self.nodes = Some(nodes);
        self
    }

    /// Keep runs with this many application threads per node.
    pub fn ways(mut self, ways: u64) -> Self {
        self.ways = Some(ways);
        self
    }

    /// Keep runs with this fault seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Keep runs of this execution engine (`"serial"` / `"parallel"`).
    pub fn engine(mut self, engine: &str) -> Self {
        self.engine = Some(engine.to_string());
        self
    }

    /// Keep runs with this exact configuration fingerprint.
    pub fn fingerprint(mut self, fp: u64) -> Self {
        self.fingerprint = Some(fp);
        self
    }

    fn matches(&self, e: &ArchiveEntry) -> bool {
        self.model.as_deref().is_none_or(|m| e.report.model == m)
            && self.app.as_deref().is_none_or(|a| e.report.app == a)
            && self.nodes.is_none_or(|n| e.report.nodes == n)
            && self.ways.is_none_or(|w| e.report.ways == w)
            && self.seed.is_none_or(|s| e.key.seed == s)
            && self.engine.as_deref().is_none_or(|g| e.key.engine == g)
            && self.fingerprint.is_none_or(|f| e.key.fingerprint == f)
    }

    /// All matching entries, oldest first.
    pub fn run(self) -> Vec<&'a ArchiveEntry> {
        self.archive
            .entries
            .iter()
            .filter(|e| self.matches(e))
            .collect()
    }

    /// The newest matching entry.
    pub fn latest(self) -> Option<&'a ArchiveEntry> {
        self.run().into_iter().next_back()
    }

    /// The newest matching entry *per distinct key*, in first-seen key
    /// order — the "current state" view of the archive.
    pub fn latest_per_key(self) -> Vec<&'a ArchiveEntry> {
        let matching = self.run();
        let mut keys: Vec<&RunKey> = Vec::new();
        for e in &matching {
            if !keys.contains(&&e.key) {
                keys.push(&e.key);
            }
        }
        keys.into_iter()
            .map(|k| {
                *matching
                    .iter()
                    .rfind(|e| &e.key == k)
                    .expect("key came from this list")
            })
            .collect()
    }
}

/// Serialize one envelope line (newline-terminated).
fn render_envelope(key: &RunKey, report_json: &str) -> String {
    let git = match &key.git_rev {
        // Revisions are hex/refname text; escape defensively anyway.
        Some(rev) => format!("\"{}\"", escape(rev)),
        None => "null".to_string(),
    };
    format!(
        "{{\"schema_version\":{ARCHIVE_SCHEMA_VERSION},\
         \"fingerprint\":\"{:016x}\",\"seed\":{},\"engine\":\"{}\",\
         \"git_rev\":{git},\"report\":{report_json}}}\n",
        key.fingerprint,
        key.seed,
        escape(&key.engine),
    )
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse one envelope line back into an entry (line number filled by the
/// caller).
fn parse_envelope(line: &str) -> Result<ArchiveEntry, String> {
    let v = smtp_core::json::parse(line).map_err(|e| format!("bad envelope: {e}"))?;
    let schema = v
        .get("schema_version")
        .and_then(JsonValue::as_u64)
        .ok_or("envelope missing schema_version")?;
    if schema != ARCHIVE_SCHEMA_VERSION as u64 {
        return Err(format!("unsupported archive schema {schema}"));
    }
    let fp_text = v
        .get("fingerprint")
        .and_then(JsonValue::as_str)
        .ok_or("envelope missing fingerprint")?;
    let fingerprint =
        u64::from_str_radix(fp_text, 16).map_err(|_| format!("bad fingerprint {fp_text:?}"))?;
    let seed = v
        .get("seed")
        .and_then(JsonValue::as_u64)
        .ok_or("envelope missing seed")?;
    let engine = v
        .get("engine")
        .and_then(JsonValue::as_str)
        .ok_or("envelope missing engine")?
        .to_string();
    let git_rev = match v.get("git_rev") {
        Some(JsonValue::Null) | None => None,
        Some(g) => Some(g.as_str().ok_or("bad git_rev")?.to_string()),
    };
    let report_value = v.get("report").ok_or("envelope missing report")?;
    // Re-parse the report from its own text so `report_json` stays the
    // exact archived bytes: find the "report": prefix and take the rest.
    let idx = line
        .find("\"report\":")
        .ok_or("envelope missing report key")?;
    let report_json = line[idx + "\"report\":".len()..line.len() - 1].to_string();
    let report = ParsedReport::from_json(&report_json)
        .map_err(|e| format!("archived report rejected: {e}"))?;
    debug_assert_eq!(&report.raw, report_value);
    Ok(ArchiveEntry {
        key: RunKey {
            fingerprint,
            seed,
            engine,
            git_rev,
        },
        report,
        report_json,
        line: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smtp_core::Report;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!(
            "smtp-archive-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn small_run(nodes: usize) -> (ExperimentConfig, String) {
        let e = ExperimentConfig::quick(
            smtp_types::MachineModel::SMTp,
            smtp_workloads::AppKind::Fft,
            nodes,
            1,
        );
        let stats = smtp_core::run_experiment(&e);
        (e, Report::new(&stats).json())
    }

    #[test]
    fn append_then_reopen_round_trips() {
        let dir = tmp_dir("roundtrip");
        let (e, json) = small_run(1);
        let key = RunKey::for_experiment(&e);
        {
            let mut ar = Archive::open(&dir).unwrap();
            ar.append(&key, &json).unwrap();
            ar.append(&key, &json).unwrap();
            assert_eq!(ar.len(), 2);
        }
        let ar = Archive::open(&dir).unwrap();
        assert_eq!(ar.len(), 2);
        let e0 = &ar.entries()[0];
        assert_eq!(e0.key, key);
        assert_eq!(e0.report_json, json);
        assert_eq!(e0.report.cycles, ar.entries()[1].report.cycles);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn query_filters_and_latest_per_key() {
        let dir = tmp_dir("query");
        let (e1, json1) = small_run(1);
        let (e2, json2) = small_run(2);
        let mut ar = Archive::open(&dir).unwrap();
        let (k1, k2) = (RunKey::for_experiment(&e1), RunKey::for_experiment(&e2));
        assert_ne!(k1.fingerprint, k2.fingerprint);
        ar.append(&k1, &json1).unwrap();
        ar.append(&k2, &json2).unwrap();
        ar.append(&k1, &json1).unwrap(); // newer replicate of k1

        assert_eq!(ar.query().nodes(2).run().len(), 1);
        assert_eq!(ar.query().model("SMTp").run().len(), 3);
        assert_eq!(ar.query().model("Base").run().len(), 0);
        assert_eq!(ar.query().seed(0).engine("serial").run().len(), 3);

        let latest = ar.query().latest_per_key();
        assert_eq!(latest.len(), 2, "two distinct keys");
        assert_eq!(latest[0].line, 3, "k1's newest replicate wins");
        assert_eq!(latest[1].line, 2);
        assert_eq!(ar.query().nodes(1).latest().unwrap().line, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_invalid_reports_without_writing() {
        let dir = tmp_dir("reject");
        let mut ar = Archive::open(&dir).unwrap();
        let key = RunKey {
            fingerprint: 1,
            seed: 0,
            engine: "serial".into(),
            git_rev: None,
        };
        assert!(ar.append(&key, "{not json").is_err());
        assert!(ar.append(&key, "{\"schema_version\":3}").is_err());
        assert!(ar.is_empty());
        assert!(
            !dir.join(ARCHIVE_FILE).exists() || {
                std::fs::read_to_string(dir.join(ARCHIVE_FILE))
                    .unwrap()
                    .is_empty()
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_line_is_reported_with_position() {
        let dir = tmp_dir("corrupt");
        let (e, json) = small_run(1);
        let mut ar = Archive::open(&dir).unwrap();
        ar.append(&RunKey::for_experiment(&e), &json).unwrap();
        // Simulate a run killed mid-append.
        let path = dir.join(ARCHIVE_FILE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"schema_version\":1,\"fingerprint\":\"00");
        std::fs::write(&path, text).unwrap();
        let err = Archive::open(&dir).unwrap_err();
        assert!(err.contains(":2:"), "no line position in {err:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
