//! Machine-global synchronization semantics.
//!
//! The applications synchronize through spin locks and software tree
//! barriers over shared memory. The *traffic* of those idioms is produced
//! by the generators (`gen` module) as real cached loads and stores; the
//! *values* — who wins a test&set, when a barrier episode completes — are
//! decided here, deterministically.

use smtp_isa::sync::{BarrierId, LockId, SyncCond, SyncEnv, SyncOp, SyncOutcome};
use smtp_types::{Ctx, NodeId};
use std::collections::HashMap;

/// Tree-barrier fan-in used by all applications (radix-4 tournament).
pub const BARRIER_RADIX: usize = 4;

/// Number of arriving units at `level` (threads at level 0, winning groups
/// above).
pub fn units_at_level(total: usize, radix: usize, level: u8) -> usize {
    let mut u = total;
    for _ in 0..level {
        u = u.div_ceil(radix);
    }
    u
}

/// The top (root) level of the tree: the level whose group count is 1.
pub fn tree_top_level(total: usize, radix: usize) -> u8 {
    let mut level = 0u8;
    while units_at_level(total, radix, level).div_ceil(radix) > 1 {
        level += 1;
    }
    level
}

#[derive(Clone, Copy, Debug, Default)]
struct GroupState {
    arrived: u32,
    /// Completed episodes (the ongoing episode is `completed + 1`).
    completed: u32,
    /// Last episode whose release flag has been set.
    released: u32,
}

/// Statistics about synchronization activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Successful lock acquisitions.
    pub lock_acquires: u64,
    /// Failed test&set attempts.
    pub lock_failures: u64,
    /// Completed barrier group episodes.
    pub barrier_episodes: u64,
}

/// Global lock and tree-barrier state.
#[derive(Clone, Debug)]
pub struct SyncManager {
    total_threads: usize,
    radix: usize,
    locks: HashMap<LockId, Option<(NodeId, Ctx)>>,
    groups: HashMap<(BarrierId, u8, u16), GroupState>,
    stats: SyncStats,
}

impl SyncManager {
    /// A manager for a machine of `total_threads` application threads.
    pub fn new(total_threads: usize) -> SyncManager {
        SyncManager {
            total_threads,
            radix: BARRIER_RADIX,
            locks: HashMap::new(),
            groups: HashMap::new(),
            stats: SyncStats::default(),
        }
    }

    /// Size of a barrier group (number of arrivals that complete it).
    pub fn group_size(&self, level: u8, group: u16) -> u32 {
        let units = units_at_level(self.total_threads, self.radix, level);
        let start = group as usize * self.radix;
        assert!(
            start < units,
            "group {group} does not exist at level {level}"
        );
        (units - start).min(self.radix) as u32
    }

    /// Whether `level` is the root of the tree.
    pub fn is_root(&self, level: u8) -> bool {
        level == tree_top_level(self.total_threads, self.radix)
    }

    /// Synchronization statistics.
    pub fn stats(&self) -> &SyncStats {
        &self.stats
    }

    /// Whether any lock is currently held (quiescence check).
    pub fn any_lock_held(&self) -> bool {
        self.locks.values().any(|h| h.is_some())
    }
}

impl SyncEnv for SyncManager {
    fn poll(&mut self, node: NodeId, ctx: Ctx, cond: SyncCond) -> bool {
        match cond {
            SyncCond::LockFree(l) => self.locks.get(&l).is_none_or(|h| h.is_none()),
            SyncCond::LockAcquired(l) => self.locks.get(&l).copied().flatten() == Some((node, ctx)),
            SyncCond::BarrierReleased {
                bar,
                level,
                group,
                episode,
            } => self
                .groups
                .get(&(bar, level, group))
                .is_some_and(|g| g.released >= episode),
        }
    }

    fn sync_store(&mut self, node: NodeId, ctx: Ctx, op: SyncOp) -> SyncOutcome {
        match op {
            SyncOp::LockAttempt(l) => {
                let h = self.locks.entry(l).or_insert(None);
                if h.is_none() {
                    *h = Some((node, ctx));
                    self.stats.lock_acquires += 1;
                    SyncOutcome::Acquired
                } else {
                    self.stats.lock_failures += 1;
                    SyncOutcome::Failed
                }
            }
            SyncOp::LockRelease(l) => {
                let h = self.locks.get_mut(&l).expect("release of unknown lock");
                assert_eq!(
                    *h,
                    Some((node, ctx)),
                    "lock {l} released by non-holder {node:?}/{ctx:?}"
                );
                *h = None;
                SyncOutcome::Done
            }
            SyncOp::BarrierArrive { bar, level, group } => {
                let size = self.group_size(level, group);
                let g = self.groups.entry((bar, level, group)).or_default();
                g.arrived += 1;
                assert!(
                    g.arrived <= size,
                    "barrier over-arrival at {bar}/{level}/{group}"
                );
                if g.arrived == size {
                    g.arrived = 0;
                    g.completed += 1;
                    self.stats.barrier_episodes += 1;
                    SyncOutcome::PropagateUp
                } else {
                    SyncOutcome::MustSpin {
                        episode: g.completed + 1,
                    }
                }
            }
            SyncOp::BarrierRelease { bar, level, group } => {
                let g = self
                    .groups
                    .get_mut(&(bar, level, group))
                    .expect("release of unarrived barrier group");
                debug_assert!(g.released < g.completed, "double release");
                g.released = g.completed;
                SyncOutcome::Done
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn me(t: u16) -> (NodeId, Ctx) {
        (NodeId(t), Ctx(0))
    }

    #[test]
    fn tree_shapes() {
        assert_eq!(tree_top_level(1, 4), 0);
        assert_eq!(tree_top_level(4, 4), 0);
        assert_eq!(tree_top_level(5, 4), 1);
        assert_eq!(tree_top_level(16, 4), 1);
        assert_eq!(tree_top_level(64, 4), 2);
        assert_eq!(units_at_level(64, 4, 1), 16);
        assert_eq!(units_at_level(64, 4, 2), 4);
    }

    #[test]
    fn group_sizes_handle_ragged_edges() {
        let m = SyncManager::new(6); // level 0: groups {0..3}, {4,5}
        assert_eq!(m.group_size(0, 0), 4);
        assert_eq!(m.group_size(0, 1), 2);
        assert_eq!(m.group_size(1, 0), 2); // two winners meet at the root
        assert!(m.is_root(1));
        assert!(!m.is_root(0));
    }

    #[test]
    fn lock_mutual_exclusion() {
        let mut m = SyncManager::new(2);
        assert!(m.poll(NodeId(0), Ctx(0), SyncCond::LockFree(7)));
        assert_eq!(
            m.sync_store(NodeId(0), Ctx(0), SyncOp::LockAttempt(7)),
            SyncOutcome::Acquired
        );
        assert!(!m.poll(NodeId(1), Ctx(0), SyncCond::LockFree(7)));
        assert_eq!(
            m.sync_store(NodeId(1), Ctx(0), SyncOp::LockAttempt(7)),
            SyncOutcome::Failed
        );
        assert!(m.poll(NodeId(0), Ctx(0), SyncCond::LockAcquired(7)));
        assert!(!m.poll(NodeId(1), Ctx(0), SyncCond::LockAcquired(7)));
        m.sync_store(NodeId(0), Ctx(0), SyncOp::LockRelease(7));
        assert!(m.poll(NodeId(1), Ctx(0), SyncCond::LockFree(7)));
        assert_eq!(m.stats().lock_acquires, 1);
        assert_eq!(m.stats().lock_failures, 1);
    }

    #[test]
    #[should_panic(expected = "non-holder")]
    fn foreign_release_panics() {
        let mut m = SyncManager::new(2);
        m.sync_store(NodeId(0), Ctx(0), SyncOp::LockAttempt(1));
        m.sync_store(NodeId(1), Ctx(0), SyncOp::LockRelease(1));
    }

    #[test]
    fn barrier_group_completes_and_releases() {
        let mut m = SyncManager::new(3); // single group of 3, level 0 root
        let arrive = SyncOp::BarrierArrive {
            bar: 0,
            level: 0,
            group: 0,
        };
        let (n0, c0) = me(0);
        assert_eq!(
            m.sync_store(n0, c0, arrive),
            SyncOutcome::MustSpin { episode: 1 }
        );
        assert_eq!(
            m.sync_store(NodeId(1), Ctx(0), arrive),
            SyncOutcome::MustSpin { episode: 1 }
        );
        assert_eq!(
            m.sync_store(NodeId(2), Ctx(0), arrive),
            SyncOutcome::PropagateUp
        );
        let released = SyncCond::BarrierReleased {
            bar: 0,
            level: 0,
            group: 0,
            episode: 1,
        };
        assert!(!m.poll(n0, c0, released));
        m.sync_store(
            NodeId(2),
            Ctx(0),
            SyncOp::BarrierRelease {
                bar: 0,
                level: 0,
                group: 0,
            },
        );
        assert!(m.poll(n0, c0, released));
        // Second episode spins on episode 2.
        assert_eq!(
            m.sync_store(n0, c0, arrive),
            SyncOutcome::MustSpin { episode: 2 }
        );
    }

    #[test]
    fn single_thread_barrier_is_trivial() {
        let mut m = SyncManager::new(1);
        assert_eq!(
            m.sync_store(
                NodeId(0),
                Ctx(0),
                SyncOp::BarrierArrive {
                    bar: 3,
                    level: 0,
                    group: 0
                }
            ),
            SyncOutcome::PropagateUp
        );
        assert!(m.is_root(0));
    }
}
