//! Data placement: block-distributed arrays and synchronization lines.
//!
//! The paper's applications use "proper page placement to minimize remote
//! memory accesses"; because the home node is a pure function of the
//! physical address in this simulator, placement is implemented by
//! *constructing* addresses with the right home bits.

use smtp_isa::sync::{BarrierId, LockId};
use smtp_types::{Addr, NodeId, Region, APP_CODE_BASE, L2_LINE};

/// Offset (within each node's AppData region) where synchronization lines
/// live; ordinary arrays are allocated below this.
pub const SYNC_BASE: u64 = 0xE000_0000;

const _: () = assert!(SYNC_BASE < APP_CODE_BASE);

/// A one-dimensional array of fixed-size elements, block-distributed
/// across the nodes: node *k* homes elements
/// `[k·per_node, (k+1)·per_node)`.
#[derive(Clone, Copy, Debug)]
pub struct DistArray {
    base: u64,
    elem: u64,
    per_node: u64,
    nodes: u16,
}

impl DistArray {
    /// Create a distributed array of `total` elements of `elem` bytes,
    /// starting at per-node offset `base`.
    ///
    /// # Panics
    ///
    /// Panics if the array would collide with the sync region.
    pub fn new(base: u64, elem: u64, total: u64, nodes: usize) -> DistArray {
        let per_node = total.div_ceil(nodes as u64);
        assert!(
            base + per_node * elem <= SYNC_BASE,
            "array overflows into the sync region"
        );
        DistArray {
            base,
            elem,
            per_node,
            nodes: nodes as u16,
        }
    }

    /// Address of element `i`.
    #[inline]
    pub fn addr(&self, i: u64) -> Addr {
        let node = ((i / self.per_node) as u16).min(self.nodes - 1);
        let off = self.base + (i % self.per_node) * self.elem;
        Addr::new(NodeId(node), Region::AppData, off)
    }

    /// Number of elements homed per node.
    pub fn per_node(&self) -> u64 {
        self.per_node
    }

    /// Element size in bytes.
    pub fn elem_size(&self) -> u64 {
        self.elem
    }

    /// Total capacity (per_node × nodes).
    pub fn len(&self) -> u64 {
        self.per_node * self.nodes as u64
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// First byte offset past this array (for allocating the next one).
    pub fn end_offset(&self) -> u64 {
        self.base + self.per_node * self.elem
    }
}

fn sync_home(index: u64, nodes: usize) -> NodeId {
    NodeId((index % nodes as u64) as u16)
}

/// Cache line holding a lock word.
pub fn lock_addr(lock: LockId, nodes: usize) -> Addr {
    Addr::new(
        sync_home(lock as u64, nodes),
        Region::AppData,
        SYNC_BASE + 0x0800_0000 + (lock as u64 / nodes as u64) * L2_LINE,
    )
}

fn barrier_slot(bar: BarrierId, level: u8, group: u16) -> u64 {
    debug_assert!(bar < 16 && level < 4 && group < 4096);
    ((bar as u64) << 14) | ((level as u64) << 12) | group as u64
}

/// Cache line holding a tree-barrier group's arrival counter.
pub fn barrier_counter_addr(bar: BarrierId, level: u8, group: u16, nodes: usize) -> Addr {
    let slot = barrier_slot(bar, level, group);
    Addr::new(
        sync_home(slot, nodes),
        Region::AppData,
        SYNC_BASE + (slot / nodes as u64) * 2 * L2_LINE,
    )
}

/// Cache line holding a tree-barrier group's release flag (a different
/// line from the counter, so spinners do not collide with arrivals).
pub fn barrier_flag_addr(bar: BarrierId, level: u8, group: u16, nodes: usize) -> Addr {
    let slot = barrier_slot(bar, level, group);
    Addr::new(
        sync_home(slot, nodes),
        Region::AppData,
        SYNC_BASE + (slot / nodes as u64) * 2 * L2_LINE + L2_LINE,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_distribution_across_homes() {
        let a = DistArray::new(0x1000, 8, 64, 4);
        assert_eq!(a.per_node(), 16);
        assert_eq!(a.addr(0).home(), NodeId(0));
        assert_eq!(a.addr(15).home(), NodeId(0));
        assert_eq!(a.addr(16).home(), NodeId(1));
        assert_eq!(a.addr(63).home(), NodeId(3));
        // Offsets restart per node.
        assert_eq!(a.addr(16).offset(), 0x1000);
        assert_eq!(a.addr(17).offset(), 0x1008);
    }

    #[test]
    fn sync_lines_are_distinct_and_spread() {
        let c = barrier_counter_addr(0, 0, 0, 4);
        let f = barrier_flag_addr(0, 0, 0, 4);
        assert_ne!(c.line(), f.line());
        let c2 = barrier_counter_addr(0, 0, 1, 4);
        assert_ne!(c.line(), c2.line());
        assert_ne!(c.home(), c2.home());
        let l0 = lock_addr(0, 4);
        let l1 = lock_addr(1, 4);
        assert_ne!(l0.line(), l1.line());
        assert_ne!(l0.home(), l1.home());
    }

    #[test]
    fn locks_and_barriers_do_not_collide() {
        let lines: Vec<_> = (0..32u32).map(|l| lock_addr(l, 8).raw()).collect();
        for (b, lvl, g) in [(0u32, 0u8, 0u16), (1, 1, 3), (15, 3, 100)] {
            let c = barrier_counter_addr(b, lvl, g, 8).raw();
            assert!(!lines.contains(&c));
        }
    }

    #[test]
    #[should_panic(expected = "sync region")]
    fn oversized_array_panics() {
        DistArray::new(SYNC_BASE - 8, 8, 1000, 1);
    }
}
