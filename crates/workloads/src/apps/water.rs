//! Water: n-body molecular dynamics (paper: 1024 molecules, 3 time steps;
//! scaled to 128 molecules, 2 steps).
//!
//! Per step: intra-molecule computation over owned molecules, then the
//! O(n²/2) inter-molecule force phase — read-shared sweeps over other
//! molecules' positions with occasional force accumulation into *their*
//! records under per-molecule locks (migratory sharing) — then a position
//! update that invalidates all readers. Compute-bound and lock-heavy; the
//! only application without software prefetching (paper §3).

use crate::apps::{own_range, WorkloadCfg};
use crate::gen::{Emit, Item, Kernel};
use crate::layout::DistArray;
use smtp_isa::Op;
use std::collections::VecDeque;

const PC_INTRA: u32 = 1200;
const PC_INTER: u32 = 1240;
const PC_UPDATE: u32 = 1300;
/// Lock ids 100.. are per-molecule force locks (0..99 reserved for other
/// apps' global locks).
const MOL_LOCK_BASE: u32 = 100;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Intra { step: u8 },
    Inter { step: u8, j: u64 },
    Update { step: u8 },
    Done,
}

/// The Water kernel for one thread.
#[derive(Debug)]
pub struct Water {
    mols: u64,
    pos: DistArray,
    force: DistArray,
    my_mols: std::ops::Range<u64>,
    steps: u8,
    phase: Phase,
    m: u64,
}

impl Water {
    /// Build the kernel for global thread `tid`.
    pub fn new(cfg: &WorkloadCfg, tid: usize) -> Water {
        let mols = cfg.scaled(128, 16);
        let pos = DistArray::new(0x0C00_0000, 256, mols, cfg.nodes);
        let force = DistArray::new(pos.end_offset(), 128, mols, cfg.nodes);
        let my_mols = own_range(tid, cfg.total_threads(), mols);
        Water {
            mols,
            pos,
            force,
            my_mols: my_mols.clone(),
            steps: 2,
            phase: Phase::Intra { step: 0 },
            m: my_mols.start,
        }
    }

    fn emit_intra(&self, e: &mut Emit<'_>, m: u64) {
        e.fload(PC_INTRA, self.pos.addr(m), 16);
        e.fload(PC_INTRA + 1, self.pos.addr(m), 17);
        // Four independent chains of depth 16: the heavy bond computation.
        e.fweb(PC_INTRA + 2, 4, 16, 0);
        e.fp(PC_INTRA + 10, Op::FpDiv, 0, 16, 4);
        e.fstore(PC_INTRA + 11, self.force.addr(m), 4);
        e.loop_branch(PC_INTRA + 12, false, PC_INTRA);
    }

    /// One (i, j) pairwise interaction: read j's position (read-shared),
    /// compute, and every 8th partner accumulate into j's force record
    /// under its lock (migratory line).
    fn emit_pair(&self, e: &mut Emit<'_>, i: u64, j_off: u64) {
        let j = (i + 1 + j_off) % self.mols;
        e.fload(PC_INTER, self.pos.addr(j), 16);
        e.fload(PC_INTER + 1, self.pos.addr(j), 17);
        e.fweb(PC_INTER + 2, 2, 10, 0);
        e.fp(PC_INTER + 6, Op::FpMul, 16, 17, 2);
        e.int(PC_INTER + 7, 1, 2);
        if j_off % 8 == 7 {
            let lock = MOL_LOCK_BASE + j as u32;
            e.lock(lock);
            e.fload(PC_INTER + 8, self.force.addr(j), 18);
            e.fp(PC_INTER + 9, Op::FpAlu, 18, 2, 19);
            e.fstore(PC_INTER + 10, self.force.addr(j), 19);
            e.unlock(lock);
        }
        e.loop_branch(PC_INTER + 11, true, PC_INTER);
    }

    fn emit_update(&self, e: &mut Emit<'_>, m: u64) {
        e.fload(PC_UPDATE, self.force.addr(m), 16);
        e.fchain(PC_UPDATE + 1, 10, 0, 16);
        e.fstore(PC_UPDATE + 5, self.pos.addr(m), 0);
        e.loop_branch(PC_UPDATE + 6, false, PC_UPDATE);
    }

    fn half(&self) -> u64 {
        self.mols / 2
    }
}

impl Kernel for Water {
    fn next_chunk(&mut self, q: &mut VecDeque<Item>) -> bool {
        let mut e = Emit::new(q);
        match self.phase {
            Phase::Intra { step } => {
                if self.m < self.my_mols.end {
                    self.emit_intra(&mut e, self.m);
                    self.m += 1;
                    true
                } else {
                    self.m = self.my_mols.start;
                    e.barrier(0);
                    self.phase = Phase::Inter { step, j: 0 };
                    true
                }
            }
            Phase::Inter { step, j } => {
                if self.m < self.my_mols.end {
                    self.emit_pair(&mut e, self.m, j);
                    let nj = j + 1;
                    self.phase = if nj < self.half() {
                        Phase::Inter { step, j: nj }
                    } else {
                        self.m += 1;
                        Phase::Inter { step, j: 0 }
                    };
                    true
                } else {
                    self.m = self.my_mols.start;
                    e.barrier(1);
                    self.phase = Phase::Update { step };
                    true
                }
            }
            Phase::Update { step } => {
                if self.m < self.my_mols.end {
                    self.emit_update(&mut e, self.m);
                    self.m += 1;
                    true
                } else {
                    self.m = self.my_mols.start;
                    e.barrier(2);
                    self.phase = if step + 1 < self.steps {
                        Phase::Intra { step: step + 1 }
                    } else {
                        Phase::Done
                    };
                    true
                }
            }
            Phase::Done => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{drain_standalone, frac, AppKind};

    fn cfg(nodes: usize, threads: usize, scale: f64) -> WorkloadCfg {
        let mut c = WorkloadCfg::new(nodes, threads);
        c.scale = scale;
        c
    }

    #[test]
    fn terminates_and_is_fp_dominant_with_no_prefetch() {
        let mix = drain_standalone(AppKind::Water, &cfg(2, 2, 0.25));
        assert!(mix.total > 10_000);
        let fp = frac(mix.fp, mix.total);
        assert!(fp > 0.5, "Water should be FP-dominant, got {fp}");
        assert_eq!(mix.prefetch, 0, "Water does not prefetch (paper §3)");
        assert!(mix.sync > 0, "molecule locks expected");
    }

    #[test]
    fn pairwise_phase_reads_other_nodes_molecules() {
        let c = cfg(4, 1, 1.0);
        let w = Water::new(&c, 0);
        let mut q = VecDeque::new();
        let mut e = Emit::new(&mut q);
        // Interactions reach halfway around the molecule ring.
        for j in 0..w.half() {
            w.emit_pair(&mut e, w.my_mols.start, j);
        }
        let mut homes = std::collections::HashSet::new();
        for item in &q {
            if let Item::I(i) = item {
                if let Some(a) = i.mem_addr() {
                    homes.insert(a.home());
                }
            }
        }
        assert!(homes.len() >= 2, "interactions stay node-local");
    }

    #[test]
    fn uses_per_molecule_locks() {
        let c = cfg(1, 2, 0.25);
        let w = Water::new(&c, 0);
        let mut q = VecDeque::new();
        let mut e = Emit::new(&mut q);
        for j in 0..16 {
            w.emit_pair(&mut e, 0, j);
        }
        let locks = q.iter().filter(|i| matches!(i, Item::Lock(_))).count();
        assert_eq!(locks, 2, "one lock per 8 partners");
    }
}
