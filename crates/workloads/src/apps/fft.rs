//! FFT: blocked 1-D FFT, 6-step structure with tiled all-to-all
//! transposes (SPLASH-2 FFT, paper: 1M points blocked for DTLB; scaled to
//! a 128×128 point matrix).
//!
//! Communication pattern: local butterfly passes over owned rows separated
//! by transposes in which every thread reads a block of every other node's
//! rows (all-to-all read traffic), writing locally. Optimized with
//! software prefetch and tiling, as in the paper.

use crate::apps::{own_range, WorkloadCfg};
use crate::gen::{Emit, Item, Kernel};
use crate::layout::DistArray;
use smtp_isa::Op;
use std::collections::VecDeque;

const PC_COMPUTE: u32 = 100;
const PC_TRANSPOSE: u32 = 200;
const TILE: u64 = 8;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Compute { pass: u8 },
    Transpose { pass: u8 },
    Done,
}

/// The FFT kernel for one thread.
#[derive(Debug)]
pub struct Fft {
    /// Matrix rows (= columns); the point count is `rows²`.
    pub rows: u64,
    cols: u64,
    a: DistArray,
    b: DistArray,
    my_rows: std::ops::Range<u64>,
    prefetch: bool,
    phase: Phase,
    row: u64,
    col: u64,
}

impl Fft {
    /// Build the kernel for global thread `tid`.
    pub fn new(cfg: &WorkloadCfg, tid: usize) -> Fft {
        let rows = cfg.scaled(128, 16);
        let cols = rows;
        let a = DistArray::new(0x0010_0000, 16, rows * cols, cfg.nodes);
        let b = DistArray::new(a.end_offset(), 16, rows * cols, cfg.nodes);
        Fft {
            rows,
            cols,
            a,
            b,
            my_rows: own_range(tid, cfg.total_threads(), rows),
            prefetch: cfg.prefetch,
            phase: Phase::Compute { pass: 0 },
            row: own_range(tid, cfg.total_threads(), rows).start,
            col: 0,
        }
    }

    /// Butterfly pass over one 32-point row segment of `arr`.
    fn emit_compute(&self, e: &mut Emit<'_>, arr: &DistArray, row: u64, col0: u64) {
        let seg = 32.min(self.cols - col0);
        if self.prefetch {
            // Next two lines of this row.
            let ahead = arr.addr(row * self.cols + (col0 + seg) % self.cols);
            e.prefetch(PC_COMPUTE, ahead, true);
        }
        for c in col0..col0 + seg {
            let idx = row * self.cols + c;
            let addr = arr.addr(idx);
            let fr = 16 + (c % 4) as u8;
            e.fload(PC_COMPUTE + 1, addr, fr);
            // Twiddle multiply + butterfly add/sub.
            e.fp(PC_COMPUTE + 2, Op::FpMul, fr, 0, 1);
            e.fp(PC_COMPUTE + 3, Op::FpMul, fr, 2, 3);
            e.fp(PC_COMPUTE + 4, Op::FpAlu, 1, 3, 4);
            e.fp(PC_COMPUTE + 5, Op::FpAlu, 4, fr, 5);
            e.fstore(PC_COMPUTE + 6, addr, 5);
            e.loop_branch(PC_COMPUTE + 7, c + 1 < col0 + seg, PC_COMPUTE + 1);
        }
    }

    /// One TILE-wide transpose strip: `dst[row, col0..col0+TILE] =
    /// src[col, row]` — the source elements live in other rows (usually
    /// other nodes).
    fn emit_transpose(
        &self,
        e: &mut Emit<'_>,
        src: &DistArray,
        dst: &DistArray,
        row: u64,
        col0: u64,
    ) {
        let seg = TILE.min(self.cols - col0);
        if self.prefetch {
            for c in col0..col0 + seg {
                e.prefetch(PC_TRANSPOSE, src.addr(c * self.cols + row), false);
            }
        }
        for c in col0..col0 + seg {
            let fr = 16 + (c % 4) as u8;
            e.fload(PC_TRANSPOSE + 1, src.addr(c * self.cols + row), fr);
            e.int(PC_TRANSPOSE + 2, 1, 2);
            e.fstore(PC_TRANSPOSE + 3, dst.addr(row * self.cols + c), fr);
            e.loop_branch(PC_TRANSPOSE + 4, c + 1 < col0 + seg, PC_TRANSPOSE + 1);
        }
    }
}

impl Kernel for Fft {
    fn next_chunk(&mut self, q: &mut VecDeque<Item>) -> bool {
        let mut e = Emit::with_prefetch(q, self.prefetch);
        match self.phase {
            Phase::Compute { pass } => {
                if self.row < self.my_rows.end {
                    let (arr, step) = if pass == 1 {
                        (self.b, 32)
                    } else {
                        (self.a, 32)
                    };
                    self.emit_compute(&mut e, &arr, self.row, self.col);
                    self.col += step;
                    if self.col >= self.cols {
                        self.col = 0;
                        self.row += 1;
                    }
                    true
                } else {
                    self.row = self.my_rows.start;
                    self.col = 0;
                    if pass == 2 {
                        self.phase = Phase::Done;
                        return false;
                    }
                    e.barrier(pass as u32 * 2);
                    self.phase = Phase::Transpose { pass };
                    true
                }
            }
            Phase::Transpose { pass } => {
                if self.row < self.my_rows.end {
                    let (src, dst) = if pass == 0 {
                        (self.a, self.b)
                    } else {
                        (self.b, self.a)
                    };
                    self.emit_transpose(&mut e, &src, &dst, self.row, self.col);
                    self.col += TILE;
                    if self.col >= self.cols {
                        self.col = 0;
                        self.row += 1;
                    }
                    true
                } else {
                    self.row = self.my_rows.start;
                    self.col = 0;
                    e.barrier(pass as u32 * 2 + 1);
                    self.phase = Phase::Compute { pass: pass + 1 };
                    true
                }
            }
            Phase::Done => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{drain_standalone, frac, AppKind};

    fn cfg(nodes: usize, threads: usize, scale: f64) -> WorkloadCfg {
        let mut c = WorkloadCfg::new(nodes, threads);
        c.scale = scale;
        c
    }

    #[test]
    fn terminates_and_has_fft_mix() {
        let mix = drain_standalone(AppKind::Fft, &cfg(2, 2, 0.15));
        assert!(mix.total > 10_000, "too little work: {}", mix.total);
        let fp = frac(mix.fp, mix.total);
        assert!((0.2..0.7).contains(&fp), "fp fraction {fp}");
        assert!(mix.prefetch > 0, "FFT must prefetch");
        assert!(mix.sync > 0, "barriers expected");
        assert!(mix.stores > 0 && mix.loads > 0);
    }

    #[test]
    fn single_thread_runs_all_phases() {
        let mix = drain_standalone(AppKind::Fft, &cfg(1, 1, 0.15));
        assert!(mix.total > 10_000);
    }

    #[test]
    fn transpose_reads_cross_node_rows() {
        let c = cfg(4, 1, 0.25);
        let f = Fft::new(&c, 0);
        // Thread 0 owns rows homed on node 0; transposed sources for
        // column blocks come from other nodes.
        let mut q = VecDeque::new();
        let mut e = Emit::new(&mut q);
        f.emit_transpose(&mut e, &f.a, &f.b, f.my_rows.start, f.cols - TILE);
        let mut remote = 0;
        for item in &q {
            if let Item::I(i) = item {
                if let Some(a) = i.mem_addr() {
                    if matches!(i.op, Op::Load { .. }) && a.home().idx() != 0 {
                        remote += 1;
                    }
                }
            }
        }
        assert!(remote > 0, "transpose should read remote rows");
    }
}
