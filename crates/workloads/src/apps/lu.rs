//! LU: blocked dense LU factorization (paper: 512×512 matrix, 16×16
//! blocks; scaled to 128×128 with 8×8 blocks).
//!
//! Per step *k*: the owner of the diagonal block factors it; owners of the
//! perimeter blocks (row *k*, column *k*) update them against the diagonal
//! block; owners of interior blocks update them against two perimeter
//! blocks (usually remote reads). Barriers separate the three sub-phases.
//! Compute-bound: the paper finds LU largely insensitive to memory
//! controller integration.

use crate::apps::WorkloadCfg;
use crate::gen::{Emit, Item, Kernel};
use smtp_types::{Addr, NodeId, Region};
use std::collections::VecDeque;

const PC_DIAG: u32 = 600;
const PC_PERIM: u32 = 640;
const PC_INNER: u32 = 680;
const BLOCK_BYTES: u64 = 512; // 8×8 doubles
const B: u64 = 8;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Diag { k: u64 },
    Perim { k: u64, idx: u64, jj: u64 },
    Inner { k: u64, i: u64, j: u64, jj: u64 },
    Done,
}

/// The LU kernel for one thread.
#[derive(Debug)]
pub struct Lu {
    nb: u64,
    tid: usize,
    total: usize,
    nodes: usize,
    phase: Phase,
    diag_jj: u64,
    prefetch: bool,
}

impl Lu {
    /// Build the kernel for global thread `tid`.
    pub fn new(cfg: &WorkloadCfg, tid: usize) -> Lu {
        Lu {
            nb: cfg.scaled(24, 6),
            tid,
            total: cfg.total_threads(),
            nodes: cfg.nodes,
            prefetch: cfg.prefetch,
            phase: Phase::Diag { k: 0 },
            diag_jj: 0,
        }
    }

    /// 2-D cookie-cutter block ownership over a `pr × pc` thread grid.
    fn owner(&self, i: u64, j: u64) -> usize {
        let pr = 1usize << (self.total.trailing_zeros() / 2);
        let pc = self.total / pr;
        ((i as usize % pr) * pc + (j as usize % pc)) % self.total
    }

    fn owner_node(&self, i: u64, j: u64) -> NodeId {
        // threads are packed node-major: tid / app_threads = node
        let per_node = self.total / self.nodes;
        NodeId((self.owner(i, j) / per_node.max(1)) as u16)
    }

    /// Base address of block (i, j), homed at its owner's node.
    fn block(&self, i: u64, j: u64) -> Addr {
        Addr::new(
            self.owner_node(i, j),
            Region::AppData,
            0x0200_0000 + (i * self.nb + j) * BLOCK_BYTES,
        )
    }

    /// One column-slice (jj) of a block update `dst -= src1 · src2`:
    /// loads a column of src1, the pivot of src2, a daxpy chain, a store.
    fn emit_slice(&self, e: &mut Emit<'_>, pc: u32, dst: Addr, src1: Addr, src2: Addr, jj: u64) {
        if jj == 0 {
            // Prefetch the source blocks (remote for interior updates).
            for l in 0..(BLOCK_BYTES / 128) {
                e.prefetch(pc, Addr(src1.raw() + l * 128), false);
                e.prefetch(pc, Addr(src2.raw() + l * 128), false);
            }
        }
        for ii in 0..B {
            let f = 16 + (ii % 4) as u8;
            e.fload(pc + 1, Addr(src1.raw() + (jj * B + ii) * 8), f);
            // Rank-B daxpy: ~B/2 multiply-adds per loaded element keeps
            // the paper's compute-bound ratio (O(b³) FLOPs per O(b²) data).
            e.fp(pc + 2, smtp_isa::Op::FpMul, f, 8, (ii % 8) as u8);
            e.fp(pc + 3, smtp_isa::Op::FpAlu, (ii % 8) as u8, 9, 10);
            e.fweb(pc + 4, 2, 2, (ii % 4) as u8);
            e.fp(pc + 6, smtp_isa::Op::FpAlu, 10, (ii % 4) as u8, 11);
            e.loop_branch(pc + 7, ii + 1 < B, pc + 1);
        }
        e.fload(pc + 5, Addr(src2.raw() + jj * 8), 11);
        e.fp(pc + 6, smtp_isa::Op::FpDiv, 10, 11, 12);
        e.fstore(pc + 7, Addr(dst.raw() + jj * B * 8), 12);
    }

    fn advance_perim(&mut self, k: u64, idx: u64) -> Phase {
        // Perimeter blocks: row k (j > k) then column k (i > k).
        let count = 2 * (self.nb - k - 1);
        if idx < count {
            Phase::Perim { k, idx, jj: 0 }
        } else {
            Phase::Inner {
                k,
                i: k + 1,
                j: k + 1,
                jj: 0,
            }
        }
    }

    fn perim_block(&self, k: u64, idx: u64) -> (u64, u64) {
        let half = self.nb - k - 1;
        if idx < half {
            (k, k + 1 + idx) // row block
        } else {
            (k + 1 + (idx - half), k) // column block
        }
    }
}

impl Kernel for Lu {
    fn next_chunk(&mut self, q: &mut VecDeque<Item>) -> bool {
        let mut e = Emit::with_prefetch(q, self.prefetch);
        loop {
            match self.phase {
                Phase::Diag { k } => {
                    if self.owner(k, k) == self.tid && self.diag_jj < B {
                        let d = self.block(k, k);
                        self.emit_slice(&mut e, PC_DIAG, d, d, d, self.diag_jj);
                        self.diag_jj += 1;
                        return true;
                    }
                    self.diag_jj = 0;
                    e.barrier(0);
                    self.phase = self.advance_perim(k, 0);
                    return true;
                }
                Phase::Perim { k, idx, jj } => {
                    let (i, j) = self.perim_block(k, idx);
                    if self.owner(i, j) == self.tid && jj < B {
                        let dst = self.block(i, j);
                        let diag = self.block(k, k);
                        self.emit_slice(&mut e, PC_PERIM, dst, diag, dst, jj);
                        self.phase = Phase::Perim { k, idx, jj: jj + 1 };
                        return true;
                    }
                    let next = self.advance_perim(k, idx + 1);
                    if matches!(next, Phase::Inner { .. }) {
                        e.barrier(1);
                        self.phase = next;
                        return true;
                    }
                    self.phase = next;
                    // Not our block: continue scanning without emitting.
                }
                Phase::Inner { k, i, j, jj } => {
                    if i >= self.nb {
                        e.barrier(2);
                        self.phase = if k + 1 < self.nb - 1 {
                            Phase::Diag { k: k + 1 }
                        } else {
                            Phase::Done
                        };
                        return true;
                    }
                    if self.owner(i, j) == self.tid && jj < B {
                        let dst = self.block(i, j);
                        let row = self.block(k, j);
                        let col = self.block(i, k);
                        self.emit_slice(&mut e, PC_INNER, dst, row, col, jj);
                        self.phase = Phase::Inner {
                            k,
                            i,
                            j,
                            jj: jj + 1,
                        };
                        return true;
                    }
                    // Advance to the next interior block.
                    let (mut ni, mut nj) = (i, j + 1);
                    if nj >= self.nb {
                        nj = k + 1;
                        ni = i + 1;
                    }
                    self.phase = Phase::Inner {
                        k,
                        i: ni,
                        j: nj,
                        jj: 0,
                    };
                }
                Phase::Done => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{drain_standalone, frac, AppKind};

    fn cfg(nodes: usize, threads: usize, scale: f64) -> WorkloadCfg {
        let mut c = WorkloadCfg::new(nodes, threads);
        c.scale = scale;
        c
    }

    #[test]
    fn terminates_and_is_compute_bound() {
        let mix = drain_standalone(AppKind::Lu, &cfg(2, 2, 0.5));
        assert!(mix.total > 20_000, "too little work: {}", mix.total);
        let fp = frac(mix.fp, mix.total);
        assert!(fp > 0.25, "LU should be FP-heavy, got {fp}");
        assert!(mix.sync > 0);
        assert!(mix.prefetch > 0);
    }

    #[test]
    fn ownership_is_a_partition() {
        let c = cfg(4, 2, 0.5);
        let lu = Lu::new(&c, 0);
        let mut counts = [0u64; 8];
        for i in 0..lu.nb {
            for j in 0..lu.nb {
                counts[lu.owner(i, j)] += 1;
            }
        }
        let total: u64 = counts.iter().sum();
        assert_eq!(total, lu.nb * lu.nb);
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn interior_updates_read_remote_perimeter() {
        let c = cfg(4, 1, 0.5);
        let lu = Lu::new(&c, 0);
        // Find an interior block owned by thread 0 whose row/col blocks
        // live on another node.
        let mut found = false;
        'outer: for k in 0..lu.nb - 1 {
            for i in k + 1..lu.nb {
                for j in k + 1..lu.nb {
                    if lu.owner(i, j) == 0
                        && (lu.owner_node(k, j) != NodeId(0) || lu.owner_node(i, k) != NodeId(0))
                    {
                        found = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(found, "no cross-node dependence in LU layout");
    }

    #[test]
    fn single_thread_completes() {
        let mix = drain_standalone(AppKind::Lu, &cfg(1, 1, 0.3));
        assert!(mix.total > 1_000);
    }
}
