//! FFTW: 3-D FFT (paper: 8192×16×16 points, 32×32 blocks; scaled to a
//! 144×144 point plane set).
//!
//! Behaviourally it is FFT with *three* transpose phases (one per
//! dimension), heavier per-point computation with wide register webs (the
//! paper found FFTW limited by integer registers, §2.3), and a larger
//! memory footprint, making it the most memory-intensive of the six after
//! Ocean.

use crate::apps::{own_range, WorkloadCfg};
use crate::gen::{Emit, Item, Kernel};
use crate::layout::DistArray;
use smtp_isa::Op;
use std::collections::VecDeque;

const PC_COMPUTE: u32 = 300;
const PC_TRANSPOSE: u32 = 420;
const TILE: u64 = 8;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Compute { pass: u8 },
    Transpose { pass: u8 },
    Done,
}

/// The FFTW kernel for one thread.
#[derive(Debug)]
pub struct Fftw {
    rows: u64,
    cols: u64,
    a: DistArray,
    b: DistArray,
    my_rows: std::ops::Range<u64>,
    phase: Phase,
    row: u64,
    col: u64,
    prefetch: bool,
}

impl Fftw {
    /// Build the kernel for global thread `tid`.
    pub fn new(cfg: &WorkloadCfg, tid: usize) -> Fftw {
        let rows = cfg.scaled(144, 16);
        let cols = rows;
        let a = DistArray::new(0x0100_0000, 16, rows * cols, cfg.nodes);
        let b = DistArray::new(a.end_offset(), 16, rows * cols, cfg.nodes);
        Fftw {
            rows,
            cols,
            a,
            b,
            my_rows: own_range(tid, cfg.total_threads(), rows),
            prefetch: cfg.prefetch,
            phase: Phase::Compute { pass: 0 },
            row: own_range(tid, cfg.total_threads(), rows).start,
            col: 0,
        }
    }

    /// Rank-update over one 16-point row segment: two loads per point and a
    /// wide FP web with many live registers (plus live integer index
    /// registers — the pressure the paper observed).
    fn emit_compute(&self, e: &mut Emit<'_>, arr: &DistArray, row: u64, col0: u64) {
        let seg = 16.min(self.cols - col0);
        let ahead = arr.addr(row * self.cols + (col0 + seg) % self.cols);
        e.prefetch(PC_COMPUTE, ahead, true);
        // Keep several integer index registers live across the segment.
        for r in 1..6 {
            e.int(PC_COMPUTE + 1, r, r + 1);
        }
        for c in col0..col0 + seg {
            let idx = row * self.cols + c;
            let addr = arr.addr(idx);
            let f0 = 16 + (c % 4) as u8;
            let f1 = 20 + (c % 4) as u8;
            e.fload(PC_COMPUTE + 2, addr, f0);
            e.fload(
                PC_COMPUTE + 3,
                arr.addr((idx + self.cols) % (self.rows * self.cols)),
                f1,
            );
            // Four independent chains of depth 2: high ILP, high pressure.
            e.fweb(PC_COMPUTE + 4, 4, 2, 0);
            e.fp(PC_COMPUTE + 8, Op::FpAlu, f0, f1, 8);
            e.fstore(PC_COMPUTE + 9, addr, 8);
            e.imul(PC_COMPUTE + 10, 2, 3);
            e.loop_branch(PC_COMPUTE + 11, c + 1 < col0 + seg, PC_COMPUTE + 2);
        }
    }

    fn emit_transpose(
        &self,
        e: &mut Emit<'_>,
        src: &DistArray,
        dst: &DistArray,
        row: u64,
        col0: u64,
    ) {
        let seg = TILE.min(self.cols - col0);
        for c in col0..col0 + seg {
            e.prefetch(PC_TRANSPOSE, src.addr(c * self.cols + row), false);
        }
        for c in col0..col0 + seg {
            let fr = 16 + (c % 4) as u8;
            e.fload(PC_TRANSPOSE + 1, src.addr(c * self.cols + row), fr);
            e.int(PC_TRANSPOSE + 2, 1, 2);
            e.int(PC_TRANSPOSE + 3, 2, 3);
            e.fstore(PC_TRANSPOSE + 4, dst.addr(row * self.cols + c), fr);
            e.loop_branch(PC_TRANSPOSE + 5, c + 1 < col0 + seg, PC_TRANSPOSE + 1);
        }
    }
}

impl Kernel for Fftw {
    fn next_chunk(&mut self, q: &mut VecDeque<Item>) -> bool {
        let mut e = Emit::with_prefetch(q, self.prefetch);
        match self.phase {
            Phase::Compute { pass } => {
                if self.row < self.my_rows.end {
                    let arr = if pass % 2 == 1 { self.b } else { self.a };
                    self.emit_compute(&mut e, &arr, self.row, self.col);
                    self.col += 16;
                    if self.col >= self.cols {
                        self.col = 0;
                        self.row += 1;
                    }
                    true
                } else {
                    self.row = self.my_rows.start;
                    self.col = 0;
                    if pass == 3 {
                        self.phase = Phase::Done;
                        return false;
                    }
                    e.barrier(pass as u32 * 2);
                    self.phase = Phase::Transpose { pass };
                    true
                }
            }
            Phase::Transpose { pass } => {
                if self.row < self.my_rows.end {
                    let (src, dst) = if pass % 2 == 0 {
                        (self.a, self.b)
                    } else {
                        (self.b, self.a)
                    };
                    self.emit_transpose(&mut e, &src, &dst, self.row, self.col);
                    self.col += TILE;
                    if self.col >= self.cols {
                        self.col = 0;
                        self.row += 1;
                    }
                    true
                } else {
                    self.row = self.my_rows.start;
                    self.col = 0;
                    e.barrier(pass as u32 * 2 + 1);
                    self.phase = Phase::Compute { pass: pass + 1 };
                    true
                }
            }
            Phase::Done => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{drain_standalone, frac, AppKind};

    fn cfg(nodes: usize, threads: usize, scale: f64) -> WorkloadCfg {
        let mut c = WorkloadCfg::new(nodes, threads);
        c.scale = scale;
        c
    }

    #[test]
    fn terminates_with_three_transposes() {
        let mix = drain_standalone(AppKind::Fftw, &cfg(2, 1, 0.12));
        assert!(mix.total > 10_000);
        assert!(mix.prefetch > 0);
        // Three transposes + four compute passes => more sync than FFT.
        assert!(mix.sync > 0);
        let fp = frac(mix.fp, mix.total);
        assert!((0.25..0.75).contains(&fp), "fp fraction {fp}");
    }

    #[test]
    fn heavier_than_fft_per_point() {
        let c = cfg(1, 1, 0.12);
        let fftw = drain_standalone(AppKind::Fftw, &c);
        let fft = drain_standalone(AppKind::Fft, &c);
        // Same scaled dimensions would differ; compare per-point FP weight.
        let fftw_fp_per_inst = frac(fftw.fp, fftw.total);
        let fft_fp_per_inst = frac(fft.fp, fft.total);
        assert!(
            fftw_fp_per_inst > fft_fp_per_inst * 0.9,
            "FFTW should be at least as FP-heavy as FFT"
        );
    }
}
