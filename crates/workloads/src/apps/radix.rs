//! Radix-Sort (paper: 2M keys, radix 32; scaled to 16K keys, 3 digit
//! passes).
//!
//! Each pass: a streaming local histogram, a parallel prefix-sum with
//! butterfly-pattern remote reads and per-step barriers, then the
//! permutation — scattered writes across the whole destination array
//! (all-to-all exclusive-ownership traffic, the protocol-stressing phase
//! that makes Radix sensitive to directory cache behaviour in the paper).

use crate::apps::{own_range, WorkloadCfg};
use crate::gen::{Emit, Item, Kernel};
use crate::layout::DistArray;
use std::collections::VecDeque;

const PC_HIST: u32 = 1000;
const PC_PREFIX: u32 = 1040;
const PC_PERMUTE: u32 = 1080;
const PASSES: u8 = 2;
const CHUNK: u64 = 16;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Histogram { pass: u8 },
    Prefix { pass: u8, step: u8 },
    Permute { pass: u8 },
    Done,
}

/// The Radix-Sort kernel for one thread.
#[derive(Debug)]
pub struct Radix {
    keys: u64,
    tid: usize,
    total: usize,
    src: DistArray,
    dst: DistArray,
    hist: DistArray,
    my_keys: std::ops::Range<u64>,
    phase: Phase,
    pos: u64,
    prefetch: bool,
    /// Next write offset within each of this thread's 32 bucket segments
    /// (the permutation writes sequentially within bucket regions, as the
    /// real sort does — the all-to-all pattern comes from the buckets
    /// being distributed across the nodes).
    bucket_fill: [u64; 32],
}

impl Radix {
    /// Build the kernel for global thread `tid`.
    pub fn new(cfg: &WorkloadCfg, tid: usize) -> Radix {
        let keys = cfg.scaled(16384, 1024);
        let src = DistArray::new(0x0800_0000, 8, keys, cfg.nodes);
        let dst = DistArray::new(src.end_offset(), 8, keys, cfg.nodes);
        // 32 counters per thread, one line apart to avoid false sharing.
        let hist = DistArray::new(
            dst.end_offset(),
            128,
            (cfg.total_threads() * 32) as u64,
            cfg.nodes,
        );
        let my_keys = own_range(tid, cfg.total_threads(), keys);
        Radix {
            keys,
            tid,
            total: cfg.total_threads(),
            src,
            dst,
            hist,
            my_keys: my_keys.clone(),
            prefetch: cfg.prefetch,
            phase: Phase::Histogram { pass: 0 },
            pos: my_keys.start,
            bucket_fill: [0; 32],
        }
    }

    /// Deterministic pseudo-random bucket of key `i` in `pass`.
    fn bucket(&self, i: u64, pass: u8) -> u64 {
        (i.wrapping_mul(2654435761).wrapping_add(pass as u64 * 97)) % 32
    }

    /// Destination of the next key landing in `bucket`: buckets are
    /// contiguous segments of the destination array (so they are
    /// block-distributed across the nodes), and each thread fills its own
    /// sub-segment sequentially.
    fn dest(&mut self, bucket: u64) -> u64 {
        let seg = self.keys / 32;
        let per_thread = (seg / self.total as u64).max(1);
        let base = bucket * seg + (self.tid as u64 * per_thread).min(seg - 1);
        let off = self.bucket_fill[bucket as usize];
        self.bucket_fill[bucket as usize] += 1;
        (base + off % per_thread.max(1)) % self.keys
    }

    fn emit_hist_chunk(&self, e: &mut Emit<'_>, start: u64) {
        let end = (start + CHUNK).min(self.my_keys.end);
        e.prefetch(PC_HIST, self.src.addr((end) % self.keys), false);
        for i in start..end {
            e.iload(PC_HIST + 1, self.src.addr(i), 1);
            e.int(PC_HIST + 2, 1, 2); // extract digit
            e.int(PC_HIST + 3, 2, 3); // index
            let bucket = (i * 7) % 32;
            let h = self.hist.addr((self.tid as u64 * 32) + bucket);
            e.iload(PC_HIST + 4, h, 4);
            e.int(PC_HIST + 5, 4, 5);
            e.istore(PC_HIST + 6, h, 5);
            e.loop_branch(PC_HIST + 7, i + 1 < end, PC_HIST + 1);
        }
    }

    /// One butterfly step of the parallel prefix-sum: read the partner
    /// thread's histogram (remote), accumulate.
    fn emit_prefix_step(&self, e: &mut Emit<'_>, step: u8) {
        let partner = (self.tid ^ (1usize << step)) % self.total;
        for b in (0..32u64).step_by(4) {
            let theirs = self.hist.addr(partner as u64 * 32 + b);
            let mine = self.hist.addr(self.tid as u64 * 32 + b);
            e.iload(PC_PREFIX, theirs, 1);
            e.iload(PC_PREFIX + 1, mine, 2);
            e.int(PC_PREFIX + 2, 1, 3);
            e.istore(PC_PREFIX + 3, mine, 3);
            e.loop_branch(PC_PREFIX + 4, b + 4 < 32, PC_PREFIX);
        }
    }

    fn emit_permute_chunk(&mut self, e: &mut Emit<'_>, start: u64, pass: u8) {
        let end = (start + CHUNK).min(self.my_keys.end);
        for i in start..end {
            let b = self.bucket(i, pass);
            let d = self.dest(b);
            let daddr = self.dst.addr(d);
            // Prefetch-exclusive one line ahead in this bucket's stream.
            if d.is_multiple_of(16) {
                e.prefetch(PC_PERMUTE, self.dst.addr((d + 16) % self.keys), true);
            }
            e.iload(PC_PERMUTE + 1, self.src.addr(i), 1);
            e.int(PC_PERMUTE + 2, 1, 2);
            e.int(PC_PERMUTE + 3, 2, 3);
            e.int(PC_PERMUTE + 4, 3, 4);
            e.istore(PC_PERMUTE + 5, daddr, 4);
            e.loop_branch(PC_PERMUTE + 6, i + 1 < end, PC_PERMUTE + 1);
        }
    }

    fn prefix_steps(&self) -> u8 {
        // Butterfly over the next power of two of the thread count.
        (usize::BITS - (self.total.max(2) - 1).leading_zeros()) as u8
    }
}

impl Kernel for Radix {
    fn next_chunk(&mut self, q: &mut VecDeque<Item>) -> bool {
        let mut e = Emit::with_prefetch(q, self.prefetch);
        match self.phase {
            Phase::Histogram { pass } => {
                if self.pos < self.my_keys.end {
                    self.emit_hist_chunk(&mut e, self.pos);
                    self.pos += CHUNK;
                    true
                } else {
                    self.pos = self.my_keys.start;
                    e.barrier(0);
                    self.phase = Phase::Prefix { pass, step: 0 };
                    true
                }
            }
            Phase::Prefix { pass, step } => {
                // One barrier-delimited exchange phase: all butterfly steps
                // back to back (the SPLASH-2 code synchronizes per step; we
                // fold the steps to keep simulated spin time bounded —
                // DESIGN.md §7).
                if self.total > 1 {
                    for st in step..self.prefix_steps() {
                        self.emit_prefix_step(&mut e, st);
                    }
                }
                e.barrier(1);
                self.phase = Phase::Permute { pass };
                true
            }
            Phase::Permute { pass } => {
                if self.pos < self.my_keys.end {
                    self.emit_permute_chunk(&mut e, self.pos, pass);
                    self.pos += CHUNK;
                    true
                } else {
                    self.pos = self.my_keys.start;
                    self.bucket_fill = [0; 32];
                    e.barrier(2);
                    self.phase = if pass + 1 < PASSES {
                        Phase::Histogram { pass: pass + 1 }
                    } else {
                        Phase::Done
                    };
                    true
                }
            }
            Phase::Done => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{drain_standalone, frac, AppKind};

    fn cfg(nodes: usize, threads: usize, scale: f64) -> WorkloadCfg {
        let mut c = WorkloadCfg::new(nodes, threads);
        c.scale = scale;
        c
    }

    #[test]
    fn terminates_and_is_integer_heavy() {
        let mix = drain_standalone(AppKind::Radix, &cfg(2, 2, 0.25));
        assert!(mix.total > 10_000);
        let ints = frac(mix.int, mix.total);
        assert!(ints > 0.2, "Radix should be integer-heavy, got {ints}");
        assert_eq!(mix.fp, 0, "Radix has no floating point");
        assert!(mix.prefetch > 0);
        assert!(mix.sync > 0);
    }

    #[test]
    fn permutation_scatters_across_nodes() {
        let c = cfg(8, 1, 1.0);
        let mut r = Radix::new(&c, 0);
        let mut homes = std::collections::HashSet::new();
        for i in r.my_keys.clone().take(512) {
            let b = r.bucket(i, 0);
            let d = r.dest(b);
            homes.insert(r.dst.addr(d).home());
        }
        assert!(homes.len() >= 6, "scatter hits only {} nodes", homes.len());
    }

    #[test]
    fn bucket_streams_are_sequential() {
        let c = cfg(2, 1, 1.0);
        let mut r = Radix::new(&c, 0);
        let d0 = r.dest(5);
        let d1 = r.dest(5);
        assert_eq!(d1, d0 + 1, "bucket fills must be sequential");
        assert_ne!(r.dest(6), r.dest(5), "buckets are distinct segments");
    }

    #[test]
    fn single_thread_skips_prefix_exchanges() {
        let mix = drain_standalone(AppKind::Radix, &cfg(1, 1, 0.1));
        assert!(mix.total > 1_000);
    }
}
