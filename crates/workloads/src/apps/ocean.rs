//! Ocean: multi-grid ocean basin simulation (paper: 514×514 grid,
//! tolerance 1e-5; scaled to 258×258 with six working grids).
//!
//! Five-point stencil sweeps over row-band-partitioned grids: neighbour
//! rows at band boundaries belong to other threads (other nodes), giving
//! nearest-neighbour sharing; the aggregate grid footprint exceeds the
//! 2 MB L2 so single-node runs are memory-bound, as in the paper.
//! Includes the global error lock with the test–lock–test–set–unlock
//! idiom of Heinrich & Chaudhuri [13] (the `Lock` item performs the
//! leading test).

use crate::apps::{own_range, WorkloadCfg};
use crate::gen::{Emit, Item, Kernel};
use crate::layout::DistArray;
use smtp_isa::Op;
use std::collections::VecDeque;

const PC_SWEEP: u32 = 800;
const PC_ERROR: u32 = 860;
const GRIDS: usize = 6;
const COL_STEP: u64 = 4;
/// The global error lock.
const ERROR_LOCK: u32 = 0;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Sweep { iter: u8, sweep: u8 },
    ErrorLock { iter: u8 },
    Done,
}

/// The Ocean kernel for one thread.
#[derive(Debug)]
pub struct Ocean {
    dim: u64,
    grids: Vec<DistArray>,
    my_rows: std::ops::Range<u64>,
    iters: u8,
    sweeps_per_iter: u8,
    phase: Phase,
    row: u64,
    prefetch: bool,
}

impl Ocean {
    /// Build the kernel for global thread `tid`.
    pub fn new(cfg: &WorkloadCfg, tid: usize) -> Ocean {
        let dim = cfg.scaled(258, 34);
        let mut grids = Vec::with_capacity(GRIDS);
        let mut base = 0x0400_0000;
        for _ in 0..GRIDS {
            let g = DistArray::new(base, 8, dim * dim, cfg.nodes);
            base = g.end_offset();
            grids.push(g);
        }
        let my_rows = own_range(tid, cfg.total_threads(), dim);
        Ocean {
            dim,
            grids,
            my_rows: my_rows.clone(),
            prefetch: cfg.prefetch,
            iters: 2,
            sweeps_per_iter: 3,
            phase: Phase::Sweep { iter: 0, sweep: 0 },
            row: my_rows.start,
        }
    }

    /// Five-point stencil over one row of a grid (strided columns: the
    /// miss traffic of a full sweep at a fraction of the instructions).
    fn emit_row(&self, e: &mut Emit<'_>, gi: usize, row: u64) {
        let g = &self.grids[gi];
        let up = row.saturating_sub(1);
        let down = (row + 1).min(self.dim - 1);
        // Prefetch the three rows involved, one line ahead.
        e.prefetch(PC_SWEEP, g.addr(row * self.dim), false);
        e.prefetch(PC_SWEEP, g.addr(up * self.dim), false);
        e.prefetch(PC_SWEEP + 1, g.addr(down * self.dim), false);
        let mut col = 1;
        while col < self.dim - 1 {
            let f = 16 + (col % 4) as u8;
            e.fload(PC_SWEEP + 2, g.addr(row * self.dim + col), f); // C
            e.fload(PC_SWEEP + 3, g.addr(row * self.dim + col - 1), 20); // W
            e.fload(PC_SWEEP + 4, g.addr(row * self.dim + col + 1), 21); // E
            e.fload(PC_SWEEP + 5, g.addr(up * self.dim + col), 22); // N
            e.fload(PC_SWEEP + 6, g.addr(down * self.dim + col), 23); // S
            e.fp(PC_SWEEP + 7, Op::FpAlu, 20, 21, 0);
            e.fp(PC_SWEEP + 8, Op::FpAlu, 22, 23, 1);
            e.fp(PC_SWEEP + 9, Op::FpAlu, 0, 1, 2);
            e.fp(PC_SWEEP + 10, Op::FpMul, 2, f, 3);
            e.fstore(PC_SWEEP + 11, g.addr(row * self.dim + col), 3);
            col += COL_STEP;
            e.loop_branch(PC_SWEEP + 12, col < self.dim - 1, PC_SWEEP + 2);
        }
    }

    /// The per-iteration global error update under the global lock.
    fn emit_error_section(&self, e: &mut Emit<'_>) {
        e.lock(ERROR_LOCK);
        let g = &self.grids[0];
        e.fload(PC_ERROR, g.addr(0), 16);
        e.fp(PC_ERROR + 1, Op::FpAlu, 16, 0, 1);
        e.fp(PC_ERROR + 2, Op::FpAlu, 1, 2, 3);
        e.fstore(PC_ERROR + 3, g.addr(0), 3);
        e.unlock(ERROR_LOCK);
    }
}

impl Kernel for Ocean {
    fn next_chunk(&mut self, q: &mut VecDeque<Item>) -> bool {
        let mut e = Emit::with_prefetch(q, self.prefetch);
        match self.phase {
            Phase::Sweep { iter, sweep } => {
                if self.row < self.my_rows.end {
                    let gi = (iter as usize * self.sweeps_per_iter as usize + sweep as usize) * 2
                        % GRIDS;
                    self.emit_row(&mut e, gi, self.row);
                    self.row += 1;
                    true
                } else {
                    self.row = self.my_rows.start;
                    e.barrier(sweep as u32);
                    self.phase = if sweep + 1 < self.sweeps_per_iter {
                        Phase::Sweep {
                            iter,
                            sweep: sweep + 1,
                        }
                    } else {
                        Phase::ErrorLock { iter }
                    };
                    true
                }
            }
            Phase::ErrorLock { iter } => {
                self.emit_error_section(&mut e);
                e.barrier(3);
                self.phase = if iter + 1 < self.iters {
                    Phase::Sweep {
                        iter: iter + 1,
                        sweep: 0,
                    }
                } else {
                    Phase::Done
                };
                true
            }
            Phase::Done => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{drain_standalone, frac, AppKind};
    use smtp_types::NodeId;

    fn cfg(nodes: usize, threads: usize, scale: f64) -> WorkloadCfg {
        let mut c = WorkloadCfg::new(nodes, threads);
        c.scale = scale;
        c
    }

    #[test]
    fn terminates_with_locks_and_barriers() {
        let mix = drain_standalone(AppKind::Ocean, &cfg(2, 2, 0.2));
        assert!(mix.total > 10_000);
        assert!(mix.sync > 0);
        assert!(mix.prefetch > 0);
        let loads = frac(mix.loads, mix.total);
        assert!(loads > 0.25, "Ocean should be load-heavy, got {loads}");
    }

    #[test]
    fn boundary_rows_touch_neighbor_bands() {
        let c = cfg(4, 1, 0.5);
        let o = Ocean::new(&c, 1);
        let mut q = VecDeque::new();
        let mut e = Emit::new(&mut q);
        // First owned row: its "up" neighbour belongs to thread 0's band.
        o.emit_row(&mut e, 0, o.my_rows.start);
        let mut homes = std::collections::HashSet::new();
        for item in &q {
            if let Item::I(i) = item {
                if let Some(a) = i.mem_addr() {
                    homes.insert(a.home());
                }
            }
        }
        assert!(homes.contains(&NodeId(0)), "no neighbour-band access");
        assert!(homes.contains(&NodeId(1)));
    }

    #[test]
    fn footprint_exceeds_l2_at_full_scale() {
        let c = cfg(1, 1, 1.0);
        let o = Ocean::new(&c, 0);
        let bytes: u64 = o.grids.iter().map(|g| g.len() * 8).sum();
        assert!(bytes > 2 * 1024 * 1024, "footprint {bytes} fits in L2");
    }

    #[test]
    fn error_lock_is_exercised() {
        let mix = drain_standalone(AppKind::Ocean, &cfg(1, 2, 0.15));
        // Two threads × two iterations of the error section.
        assert!(mix.sync >= 4);
        assert!(mix.total > 1000);
    }
}
