//! The six application kernels (paper Table 1, scaled per DESIGN.md §7).

mod fft;
mod fftw;
mod lu;
mod ocean;
mod radix;
mod water;

pub use fft::Fft;
pub use fftw::Fftw;
pub use lu::Lu;
pub use ocean::Ocean;
pub use radix::Radix;
pub use water::Water;

use crate::gen::{Kernel, ThreadGen};
use smtp_types::{Ctx, NodeId};

/// Which application to run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AppKind {
    /// Blocked 1-D FFT with tiled transposes (SPLASH-2 FFT).
    Fft,
    /// 3-D FFT with three transpose phases and high register pressure.
    Fftw,
    /// Blocked dense LU factorization (compute-bound).
    Lu,
    /// Multi-grid ocean simulation: stencil sweeps, nearest-neighbour
    /// sharing, a contended global error lock.
    Ocean,
    /// Radix sort: local histograms, tree prefix-sum, all-to-all
    /// permutation writes.
    Radix,
    /// N-body water simulation: read-shared position sweeps, per-molecule
    /// force locks, compute-bound.
    Water,
}

impl AppKind {
    /// All applications, in the paper's presentation order.
    pub const ALL: [AppKind; 6] = [
        AppKind::Fft,
        AppKind::Fftw,
        AppKind::Lu,
        AppKind::Ocean,
        AppKind::Radix,
        AppKind::Water,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Fft => "FFT",
            AppKind::Fftw => "FFTW",
            AppKind::Lu => "LU",
            AppKind::Ocean => "Ocean",
            AppKind::Radix => "Radix",
            AppKind::Water => "Water",
        }
    }

    /// Whether the application uses software prefetching (all but Water,
    /// paper §3).
    pub fn uses_prefetch(self) -> bool {
        !matches!(self, AppKind::Water)
    }
}

impl std::fmt::Display for AppKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Workload construction parameters.
#[derive(Clone, Debug)]
pub struct WorkloadCfg {
    /// Number of nodes in the machine.
    pub nodes: usize,
    /// Application threads per node.
    pub app_threads: usize,
    /// Problem-size multiplier relative to the DESIGN.md §7 defaults
    /// (use < 1.0 for quick runs).
    pub scale: f64,
    /// Software prefetching enabled (paper §3: all applications except
    /// Water prefetch; turning this off models the paper's "less-tuned"
    /// variant, whose relative trends stay qualitatively identical).
    pub prefetch: bool,
}

impl WorkloadCfg {
    /// Default configuration for a machine.
    pub fn new(nodes: usize, app_threads: usize) -> WorkloadCfg {
        WorkloadCfg {
            nodes,
            app_threads,
            scale: 1.0,
            prefetch: true,
        }
    }

    /// Total application threads.
    pub fn total_threads(&self) -> usize {
        self.nodes * self.app_threads
    }

    /// Global thread id of a context.
    pub fn tid(&self, node: NodeId, ctx: Ctx) -> usize {
        node.idx() * self.app_threads + ctx.idx()
    }

    /// Scale a loop count, keeping at least `min`.
    pub fn scaled(&self, base: u64, min: u64) -> u64 {
        ((base as f64 * self.scale) as u64).max(min)
    }
}

/// Per-thread work partitioning: the contiguous range of `n` items owned
/// by thread `tid` out of `total`.
pub fn own_range(tid: usize, total: usize, n: u64) -> std::ops::Range<u64> {
    let per = n.div_ceil(total as u64);
    let start = (tid as u64 * per).min(n);
    let end = ((tid as u64 + 1) * per).min(n);
    start..end
}

/// Construct the generator for one application thread.
pub fn make_thread(kind: AppKind, cfg: &WorkloadCfg, node: NodeId, ctx: Ctx) -> ThreadGen {
    let tid = cfg.tid(node, ctx);
    let total = cfg.total_threads();
    let kernel: Box<dyn Kernel + Send> = match kind {
        AppKind::Fft => Box::new(Fft::new(cfg, tid)),
        AppKind::Fftw => Box::new(Fftw::new(cfg, tid)),
        AppKind::Lu => Box::new(Lu::new(cfg, tid)),
        AppKind::Ocean => Box::new(Ocean::new(cfg, tid)),
        AppKind::Radix => Box::new(Radix::new(cfg, tid)),
        AppKind::Water => Box::new(Water::new(cfg, tid)),
    };
    ThreadGen::new(kernel, tid, total, cfg.nodes)
}

/// Functionally execute one thread's generator with trivially-satisfied
/// synchronization; used by per-app unit tests to validate emission
/// (termination, instruction mix) without the pipeline.
#[cfg(test)]
pub(crate) fn drain_standalone(kind: AppKind, cfg: &WorkloadCfg) -> AppMix {
    use crate::manager::SyncManager;
    use smtp_isa::sync::SyncEnv;
    use smtp_isa::{InstSource, Op, SyncOutcome};

    let total = cfg.total_threads();
    let mut mgr = SyncManager::new(total);
    let mut gens: Vec<ThreadGen> = (0..cfg.nodes as u16)
        .flat_map(|n| (0..cfg.app_threads as u8).map(move |c| (NodeId(n), Ctx(c))))
        .map(|(n, c)| make_thread(kind, cfg, n, c))
        .collect();
    let mut mix = AppMix::default();
    let mut halted = vec![false; total];
    let mut steps: u64 = 0;
    while halted.iter().any(|h| !h) {
        steps += 1;
        assert!(steps < 200_000_000, "{kind} did not terminate");
        for (t, g) in gens.iter_mut().enumerate() {
            if halted[t] {
                continue;
            }
            let node = NodeId((t / cfg.app_threads) as u16);
            let ctx = Ctx((t % cfg.app_threads) as u8);
            let i = g.next_inst();
            mix.count(&i.op);
            match i.op {
                Op::Halt => halted[t] = true,
                Op::SyncBranch { cond } => {
                    let sat = mgr.poll(node, ctx, cond);
                    g.sync_result(SyncOutcome::Cond(sat));
                }
                Op::SyncStore { op, .. } => {
                    let out = mgr.sync_store(node, ctx, op);
                    g.sync_result(out);
                }
                _ => {}
            }
        }
    }
    mix
}

/// Instruction-mix accumulator for tests.
#[cfg(test)]
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct AppMix {
    pub total: u64,
    pub fp: u64,
    pub int: u64,
    pub loads: u64,
    pub stores: u64,
    pub prefetch: u64,
    pub branches: u64,
    pub sync: u64,
}

#[cfg(test)]
impl AppMix {
    fn count(&mut self, op: &smtp_isa::Op) {
        use smtp_isa::Op;
        self.total += 1;
        match op {
            Op::FpAlu | Op::FpMul | Op::FpDiv => self.fp += 1,
            Op::IntAlu | Op::IntMul | Op::IntDiv => self.int += 1,
            Op::Load { .. } => self.loads += 1,
            Op::Store { .. } => self.stores += 1,
            Op::Prefetch { .. } => self.prefetch += 1,
            Op::Branch { .. } | Op::Call { .. } | Op::Ret => self.branches += 1,
            Op::SyncBranch { .. } | Op::SyncStore { .. } | Op::SyncLoad { .. } => self.sync += 1,
            _ => {}
        }
    }
}

/// Shared test helper: the fraction `a / b`, 0 when empty.
#[cfg(test)]
pub(crate) fn frac(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_exactly() {
        let n = 103u64;
        let total = 8;
        let mut covered = 0;
        for t in 0..total {
            let r = own_range(t, total, n);
            covered += r.end - r.start;
        }
        assert_eq!(covered, n);
        assert_eq!(own_range(0, 8, 103).start, 0);
        assert_eq!(own_range(7, 8, 103).end, 103);
    }

    #[test]
    fn tid_mapping() {
        let cfg = WorkloadCfg::new(4, 2);
        assert_eq!(cfg.tid(NodeId(0), Ctx(0)), 0);
        assert_eq!(cfg.tid(NodeId(3), Ctx(1)), 7);
        assert_eq!(cfg.total_threads(), 8);
    }

    #[test]
    fn scaled_respects_minimum() {
        let mut cfg = WorkloadCfg::new(1, 1);
        cfg.scale = 0.01;
        assert_eq!(cfg.scaled(100, 8), 8);
        cfg.scale = 2.0;
        assert_eq!(cfg.scaled(100, 8), 200);
    }
}
