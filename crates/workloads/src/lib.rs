//! Workload generators: synthetic kernels reproducing the memory-system
//! behaviour of the paper's six shared-memory applications (Table 1).
//!
//! The paper executes real MIPS binaries of FFT, FFTW, LU, Ocean,
//! Radix-Sort and Water. This reproduction substitutes per-application
//! **synthetic kernel generators** (DESIGN.md §2): stateful state machines
//! that emit the abstract micro-op stream of each application —
//! floating-point/integer mixes with realistic dependence structure,
//! loads/stores following the application's actual address and sharing
//! pattern, software prefetches, loop branches, spin locks and software
//! tree barriers. Every paper result is driven by the memory-system
//! interaction of these programs, which the generators preserve; absolute
//! instruction counts are scaled down (DESIGN.md §7) so the full
//! experiment matrix runs on one host core.
//!
//! Architecture:
//!
//! * [`SyncManager`] — machine-global lock and tree-barrier semantics
//!   (data values of sync words are not simulated; their coherence traffic
//!   is, because the idioms below access real cache lines);
//! * [`gen::ThreadGen`] — wraps an application [`gen::Kernel`] and expands
//!   `Lock` / `Unlock` / `Barrier` items into the test–test&set and
//!   tree-barrier instruction idioms, consuming [`smtp_isa::SyncOutcome`]s;
//! * [`apps`] — the six kernels;
//! * [`layout`] — block-distributed arrays and sync-line placement.

pub mod apps;
pub mod gen;
pub mod layout;
pub mod manager;

pub use apps::{make_thread, AppKind, WorkloadCfg};
pub use gen::{Item, Kernel, ThreadGen};
pub use layout::{barrier_counter_addr, barrier_flag_addr, lock_addr, DistArray};
pub use manager::SyncManager;
