//! The thread-generator framework.
//!
//! An application is written as a [`Kernel`]: a state machine that emits
//! *chunks* of work items (plain instructions plus `Lock` / `Unlock` /
//! `Barrier` directives). [`ThreadGen`] wraps a kernel and expands the
//! directives into the real synchronization instruction idioms:
//!
//! * **Locks** — test–test&set: spin with cached [`smtp_isa::Op::SyncLoad`]s
//!   and a serializing [`smtp_isa::Op::SyncBranch`], then attempt the
//!   [`smtp_isa::Op::SyncStore`] test&set (which performs a real exclusive
//!   cache access);
//! * **Barriers** — radix-4 tournament tree: arrive at the leaf group,
//!   winners propagate upward, the root completer starts the release
//!   cascade, and every winner releases the groups it won on the way up.
//!
//! Both idioms touch real cache lines (placed by the `layout` module), so
//! spinning caches the line Shared and releases invalidate every spinner
//! through the full directory protocol.

use crate::layout::{barrier_counter_addr, barrier_flag_addr, lock_addr};
use crate::manager::{tree_top_level, BARRIER_RADIX};
use smtp_isa::sync::{BarrierId, LockId, SyncCond, SyncOp, SyncOutcome};
use smtp_isa::{Inst, InstSource, Op, Reg};
use smtp_types::Addr;
use std::collections::VecDeque;

/// A unit of work emitted by a kernel.
#[derive(Clone, Copy, Debug)]
pub enum Item {
    /// A plain instruction.
    I(Inst),
    /// Acquire a spin lock.
    Lock(LockId),
    /// Release a held lock.
    Unlock(LockId),
    /// Cross the given barrier (one episode).
    Barrier(BarrierId),
}

/// An application kernel: emits chunks of [`Item`]s until done.
pub trait Kernel {
    /// Append the next chunk of work to `q`; return `false` when the
    /// program is complete (nothing was appended).
    fn next_chunk(&mut self, q: &mut VecDeque<Item>) -> bool;
}

/// PCs used by the synchronization idioms (shared across apps; kernels use
/// PCs below this range).
const SYNC_PC: u32 = 0xFF00;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Run,
    LockTest(LockId),
    LockTestBranch(LockId),
    LockTestWait(LockId),
    LockAttempt(LockId),
    LockAttemptWait(LockId),
    UnlockWait,
    BarArrive {
        bar: BarrierId,
        level: u8,
    },
    BarArriveWait {
        bar: BarrierId,
        level: u8,
    },
    BarSpinLoad {
        bar: BarrierId,
        level: u8,
        group: u16,
        episode: u32,
    },
    BarSpinBranch {
        bar: BarrierId,
        level: u8,
        group: u16,
        episode: u32,
    },
    BarSpinWait {
        bar: BarrierId,
        level: u8,
        group: u16,
        episode: u32,
    },
    BarRelease {
        bar: BarrierId,
        idx: usize,
    },
    BarReleaseWait {
        bar: BarrierId,
        idx: usize,
    },
}

/// A per-thread instruction source driving one application thread.
pub struct ThreadGen {
    kernel: Box<dyn Kernel + Send>,
    items: VecDeque<Item>,
    mode: Mode,
    tid: usize,
    nodes: usize,
    top_level: u8,
    won: Vec<(u8, u16)>,
    kernel_done: bool,
    /// Barrier episodes this thread has completed (statistic).
    pub barriers_crossed: u64,
    /// Lock acquisitions completed (statistic).
    pub locks_taken: u64,
}

impl std::fmt::Debug for ThreadGen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadGen")
            .field("tid", &self.tid)
            .field("mode", &self.mode)
            .field("queued", &self.items.len())
            .finish()
    }
}

impl ThreadGen {
    /// Wrap `kernel` as global thread `tid` of `total_threads` on a
    /// `nodes`-node machine.
    pub fn new(
        kernel: Box<dyn Kernel + Send>,
        tid: usize,
        total_threads: usize,
        nodes: usize,
    ) -> ThreadGen {
        ThreadGen {
            kernel,
            items: VecDeque::with_capacity(128),
            mode: Mode::Run,
            tid,
            nodes,
            top_level: tree_top_level(total_threads, BARRIER_RADIX),
            won: Vec::new(),
            kernel_done: false,
            barriers_crossed: 0,
            locks_taken: 0,
        }
    }

    fn group_of(&self, level: u8) -> u16 {
        let mut g = self.tid / BARRIER_RADIX;
        for _ in 0..level {
            g /= BARRIER_RADIX;
        }
        g as u16
    }

    fn lock_line(&self, l: LockId) -> Addr {
        lock_addr(l, self.nodes)
    }

    fn sync_load(&self, addr: Addr, pc_off: u32) -> Inst {
        Inst::new(Op::SyncLoad { addr }, SYNC_PC + pc_off).with_dst(Reg::int(30))
    }

    fn sync_branch(&self, cond: SyncCond, pc_off: u32) -> Inst {
        Inst::new(Op::SyncBranch { cond }, SYNC_PC + pc_off).with_srcs(Some(Reg::int(30)), None)
    }

    fn sync_store(&self, addr: Addr, op: SyncOp, pc_off: u32) -> Inst {
        Inst::new(Op::SyncStore { addr, op }, SYNC_PC + pc_off)
    }
}

impl InstSource for ThreadGen {
    fn next_inst(&mut self) -> Inst {
        loop {
            match self.mode {
                Mode::Run => {
                    let Some(item) = self.items.pop_front() else {
                        if self.kernel_done {
                            return Inst::new(Op::Halt, 0);
                        }
                        if !self.kernel.next_chunk(&mut self.items) {
                            self.kernel_done = true;
                        }
                        continue;
                    };
                    match item {
                        Item::I(i) => return i,
                        Item::Lock(l) => self.mode = Mode::LockTest(l),
                        Item::Unlock(l) => {
                            self.mode = Mode::UnlockWait;
                            return self.sync_store(self.lock_line(l), SyncOp::LockRelease(l), 6);
                        }
                        Item::Barrier(b) => {
                            self.won.clear();
                            self.mode = Mode::BarArrive { bar: b, level: 0 };
                        }
                    }
                }
                Mode::LockTest(l) => {
                    self.mode = Mode::LockTestBranch(l);
                    return self.sync_load(self.lock_line(l), 0);
                }
                Mode::LockTestBranch(l) => {
                    self.mode = Mode::LockTestWait(l);
                    return self.sync_branch(SyncCond::LockFree(l), 1);
                }
                Mode::LockAttempt(l) => {
                    self.mode = Mode::LockAttemptWait(l);
                    return self.sync_store(self.lock_line(l), SyncOp::LockAttempt(l), 2);
                }
                Mode::BarArrive { bar, level } => {
                    let group = self.group_of(level);
                    self.mode = Mode::BarArriveWait { bar, level };
                    return self.sync_store(
                        barrier_counter_addr(bar, level, group, self.nodes),
                        SyncOp::BarrierArrive { bar, level, group },
                        10 + level as u32,
                    );
                }
                Mode::BarSpinLoad {
                    bar,
                    level,
                    group,
                    episode,
                } => {
                    self.mode = Mode::BarSpinBranch {
                        bar,
                        level,
                        group,
                        episode,
                    };
                    return self.sync_load(
                        barrier_flag_addr(bar, level, group, self.nodes),
                        20 + level as u32,
                    );
                }
                Mode::BarSpinBranch {
                    bar,
                    level,
                    group,
                    episode,
                } => {
                    self.mode = Mode::BarSpinWait {
                        bar,
                        level,
                        group,
                        episode,
                    };
                    return self.sync_branch(
                        SyncCond::BarrierReleased {
                            bar,
                            level,
                            group,
                            episode,
                        },
                        24 + level as u32,
                    );
                }
                Mode::BarRelease { bar, idx } => {
                    if idx >= self.won.len() {
                        self.barriers_crossed += 1;
                        self.mode = Mode::Run;
                        continue;
                    }
                    let (level, group) = self.won[idx];
                    self.mode = Mode::BarReleaseWait { bar, idx };
                    return self.sync_store(
                        barrier_flag_addr(bar, level, group, self.nodes),
                        SyncOp::BarrierRelease { bar, level, group },
                        30 + level as u32,
                    );
                }
                Mode::LockTestWait(_)
                | Mode::LockAttemptWait(_)
                | Mode::UnlockWait
                | Mode::BarArriveWait { .. }
                | Mode::BarSpinWait { .. }
                | Mode::BarReleaseWait { .. } => {
                    unreachable!(
                        "fetch must stay blocked while a sync outcome is pending ({:?})",
                        self.mode
                    );
                }
            }
        }
    }

    fn sync_result(&mut self, outcome: SyncOutcome) {
        self.mode = match (self.mode, outcome) {
            (Mode::LockTestWait(l), SyncOutcome::Cond(true)) => Mode::LockAttempt(l),
            (Mode::LockTestWait(l), SyncOutcome::Cond(false)) => Mode::LockTest(l),
            (Mode::LockAttemptWait(_), SyncOutcome::Acquired) => {
                self.locks_taken += 1;
                Mode::Run
            }
            (Mode::LockAttemptWait(l), SyncOutcome::Failed) => Mode::LockTest(l),
            (Mode::UnlockWait, SyncOutcome::Done) => Mode::Run,
            (Mode::BarArriveWait { bar, level }, SyncOutcome::MustSpin { episode }) => {
                Mode::BarSpinLoad {
                    bar,
                    level,
                    group: self.group_of(level),
                    episode,
                }
            }
            (Mode::BarArriveWait { bar, level }, SyncOutcome::PropagateUp) => {
                self.won.push((level, self.group_of(level)));
                if level >= self.top_level {
                    // Root completed: release the groups won, top-down.
                    self.won.reverse();
                    Mode::BarRelease { bar, idx: 0 }
                } else {
                    Mode::BarArrive {
                        bar,
                        level: level + 1,
                    }
                }
            }
            (
                Mode::BarSpinWait {
                    bar,
                    level,
                    group,
                    episode,
                },
                SyncOutcome::Cond(sat),
            ) => {
                if sat {
                    // Released: release the groups this thread won below.
                    self.won.reverse();
                    Mode::BarRelease { bar, idx: 0 }
                } else {
                    Mode::BarSpinLoad {
                        bar,
                        level,
                        group,
                        episode,
                    }
                }
            }
            (Mode::BarReleaseWait { bar, idx }, SyncOutcome::Done) => {
                Mode::BarRelease { bar, idx: idx + 1 }
            }
            (m, o) => panic!("sync outcome {o:?} in generator mode {m:?}"),
        };
    }
}

/// Instruction-emission helpers for kernels.
///
/// Register conventions: `f0..f15` computation, `f16..f23` loaded values,
/// `r0..r7` integer computation, `r8..r15` addresses/indices. The sync
/// idioms use `r30`.
pub struct Emit<'a> {
    q: &'a mut VecDeque<Item>,
    prefetch: bool,
}

impl<'a> Emit<'a> {
    /// Wrap an item queue.
    pub fn new(q: &'a mut VecDeque<Item>) -> Emit<'a> {
        Emit { q, prefetch: true }
    }

    /// Wrap an item queue with prefetch emission gated (the "less-tuned"
    /// application variant of paper §3).
    pub fn with_prefetch(q: &'a mut VecDeque<Item>, prefetch: bool) -> Emit<'a> {
        Emit { q, prefetch }
    }

    /// Floating-point load.
    pub fn fload(&mut self, pc: u32, addr: Addr, dst: u8) {
        self.q.push_back(Item::I(
            Inst::new(Op::Load { addr }, pc)
                .with_srcs(Some(Reg::int(8)), None)
                .with_dst(Reg::fp(dst)),
        ));
    }

    /// Integer load.
    pub fn iload(&mut self, pc: u32, addr: Addr, dst: u8) {
        self.q.push_back(Item::I(
            Inst::new(Op::Load { addr }, pc)
                .with_srcs(Some(Reg::int(8)), None)
                .with_dst(Reg::int(dst)),
        ));
    }

    /// Floating-point store.
    pub fn fstore(&mut self, pc: u32, addr: Addr, src: u8) {
        self.q.push_back(Item::I(
            Inst::new(Op::Store { addr }, pc).with_srcs(Some(Reg::fp(src)), Some(Reg::int(8))),
        ));
    }

    /// Integer store.
    pub fn istore(&mut self, pc: u32, addr: Addr, src: u8) {
        self.q.push_back(Item::I(
            Inst::new(Op::Store { addr }, pc).with_srcs(Some(Reg::int(src)), Some(Reg::int(8))),
        ));
    }

    /// Software prefetch (dropped when the emitter was built with
    /// prefetching disabled).
    pub fn prefetch(&mut self, pc: u32, addr: Addr, exclusive: bool) {
        if self.prefetch {
            self.q
                .push_back(Item::I(Inst::new(Op::Prefetch { addr, exclusive }, pc)));
        }
    }

    /// One floating-point op `d = s1 ⊕ s2`.
    pub fn fp(&mut self, pc: u32, op: Op, s1: u8, s2: u8, d: u8) {
        debug_assert!(matches!(op, Op::FpAlu | Op::FpMul | Op::FpDiv));
        self.q.push_back(Item::I(
            Inst::new(op, pc)
                .with_srcs(Some(Reg::fp(s1)), Some(Reg::fp(s2)))
                .with_dst(Reg::fp(d)),
        ));
    }

    /// One integer ALU op.
    pub fn int(&mut self, pc: u32, s1: u8, d: u8) {
        self.q.push_back(Item::I(
            Inst::new(Op::IntAlu, pc)
                .with_srcs(Some(Reg::int(s1)), None)
                .with_dst(Reg::int(d)),
        ));
    }

    /// Integer multiply.
    pub fn imul(&mut self, pc: u32, s1: u8, d: u8) {
        self.q.push_back(Item::I(
            Inst::new(Op::IntMul, pc)
                .with_srcs(Some(Reg::int(s1)), None)
                .with_dst(Reg::int(d)),
        ));
    }

    /// A chain of `n` dependent floating-point ops accumulating into `acc`
    /// (multiply-add style: alternating FpMul/FpAlu).
    pub fn fchain(&mut self, pc: u32, n: u32, acc: u8, operand: u8) {
        for k in 0..n {
            let op = if k % 2 == 0 { Op::FpMul } else { Op::FpAlu };
            self.fp(pc + (k % 4), op, acc, operand, acc);
        }
    }

    /// `width` independent dependence chains of `depth` ops each (models
    /// unrolled high-ILP FP loops, FFTW-style register pressure).
    pub fn fweb(&mut self, pc: u32, width: u8, depth: u32, base_reg: u8) {
        for d in 0..depth {
            for w in 0..width {
                let r = base_reg + w;
                let op = if d % 2 == 0 { Op::FpMul } else { Op::FpAlu };
                self.fp(pc + w as u32, op, r, r.wrapping_add(1).min(30), r);
            }
        }
    }

    /// Loop back-edge branch (`taken` until the loop exits).
    pub fn loop_branch(&mut self, pc: u32, taken: bool, target: u32) {
        self.q.push_back(Item::I(
            Inst::new(Op::Branch { taken, target }, pc).with_srcs(Some(Reg::int(0)), None),
        ));
    }

    /// Data-dependent conditional branch.
    pub fn cond_branch(&mut self, pc: u32, taken: bool) {
        self.q.push_back(Item::I(
            Inst::new(
                Op::Branch {
                    taken,
                    target: pc + 4,
                },
                pc,
            )
            .with_srcs(Some(Reg::int(1)), None),
        ));
    }

    /// Acquire a lock.
    pub fn lock(&mut self, l: LockId) {
        self.q.push_back(Item::Lock(l));
    }

    /// Release a lock.
    pub fn unlock(&mut self, l: LockId) {
        self.q.push_back(Item::Unlock(l));
    }

    /// Cross a barrier.
    pub fn barrier(&mut self, b: BarrierId) {
        self.q.push_back(Item::Barrier(b));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::SyncManager;
    use smtp_isa::sync::SyncEnv;
    use smtp_types::{Ctx, NodeId};

    /// A kernel that emits `n` ALU ops, a barrier, `n` more ops.
    struct TwoPhase {
        n: u32,
        state: u8,
    }

    impl Kernel for TwoPhase {
        fn next_chunk(&mut self, q: &mut VecDeque<Item>) -> bool {
            let mut e = Emit::new(q);
            match self.state {
                0 => {
                    for i in 0..self.n {
                        e.int(i % 4, 0, 1);
                    }
                    e.barrier(0);
                    self.state = 1;
                    true
                }
                1 => {
                    for i in 0..self.n {
                        e.int(10 + i % 4, 1, 2);
                    }
                    self.state = 2;
                    true
                }
                _ => false,
            }
        }
    }

    /// Functionally execute a set of generators against a SyncManager:
    /// pull one instruction per thread round-robin, resolving serializing
    /// instructions immediately. Returns per-thread instruction counts.
    fn functional_run(gens: &mut [ThreadGen], mgr: &mut SyncManager, limit: u64) -> Vec<u64> {
        let n = gens.len();
        let mut counts = vec![0u64; n];
        let mut halted = vec![false; n];
        let mut steps = 0u64;
        while halted.iter().any(|h| !h) {
            steps += 1;
            assert!(steps < limit, "functional run did not terminate");
            for (t, g) in gens.iter_mut().enumerate() {
                if halted[t] {
                    continue;
                }
                let (node, ctx) = (NodeId(t as u16), Ctx(0));
                let i = g.next_inst();
                counts[t] += 1;
                match i.op {
                    Op::Halt => halted[t] = true,
                    Op::SyncBranch { cond } => {
                        let sat = mgr.poll(node, ctx, cond);
                        g.sync_result(SyncOutcome::Cond(sat));
                    }
                    Op::SyncStore { op, .. } => {
                        let out = mgr.sync_store(node, ctx, op);
                        g.sync_result(out);
                    }
                    _ => {}
                }
            }
        }
        counts
    }

    #[test]
    fn barrier_synchronizes_eight_threads() {
        let mut mgr = SyncManager::new(8);
        let mut gens: Vec<ThreadGen> = (0..8)
            .map(|t| ThreadGen::new(Box::new(TwoPhase { n: 10, state: 0 }), t, 8, 8))
            .collect();
        let counts = functional_run(&mut gens, &mut mgr, 100_000);
        for (t, &c) in counts.iter().enumerate() {
            assert!(c >= 21, "thread {t} committed too few instructions: {c}");
        }
        assert!(gens.iter().all(|g| g.barriers_crossed == 1));
        assert_eq!(mgr.stats().barrier_episodes, 2 + 1); // 2 leaf groups + root
    }

    #[test]
    fn single_thread_crosses_barriers_alone() {
        let mut mgr = SyncManager::new(1);
        let mut gens = vec![ThreadGen::new(
            Box::new(TwoPhase { n: 3, state: 0 }),
            0,
            1,
            1,
        )];
        functional_run(&mut gens, &mut mgr, 10_000);
        assert_eq!(gens[0].barriers_crossed, 1);
    }

    /// A kernel that takes a lock, does work, releases, repeatedly.
    struct Locker {
        rounds: u32,
    }

    impl Kernel for Locker {
        fn next_chunk(&mut self, q: &mut VecDeque<Item>) -> bool {
            if self.rounds == 0 {
                return false;
            }
            self.rounds -= 1;
            let mut e = Emit::new(q);
            e.lock(5);
            e.int(0, 0, 1);
            e.int(1, 1, 2);
            e.unlock(5);
            true
        }
    }

    #[test]
    fn contended_lock_serializes_critical_sections() {
        let mut mgr = SyncManager::new(4);
        let mut gens: Vec<ThreadGen> = (0..4)
            .map(|t| ThreadGen::new(Box::new(Locker { rounds: 5 }), t, 4, 4))
            .collect();
        functional_run(&mut gens, &mut mgr, 1_000_000);
        assert!(gens.iter().all(|g| g.locks_taken == 5));
        assert_eq!(mgr.stats().lock_acquires, 20);
        assert!(!mgr.any_lock_held());
    }

    #[test]
    fn sixty_four_threads_multilevel_barrier() {
        let mut mgr = SyncManager::new(64);
        let mut gens: Vec<ThreadGen> = (0..64)
            .map(|t| ThreadGen::new(Box::new(TwoPhase { n: 2, state: 0 }), t, 64, 32))
            .collect();
        functional_run(&mut gens, &mut mgr, 5_000_000);
        assert!(gens.iter().all(|g| g.barriers_crossed == 1));
        // 16 leaf groups + 4 level-1 groups + root = 21 episodes.
        assert_eq!(mgr.stats().barrier_episodes, 21);
    }

    #[test]
    fn emit_helpers_produce_expected_ops() {
        let mut q = VecDeque::new();
        let mut e = Emit::new(&mut q);
        let a = Addr::new(NodeId(0), smtp_types::Region::AppData, 0x100);
        e.fload(1, a, 16);
        e.fchain(2, 4, 0, 16);
        e.fstore(6, a, 0);
        e.loop_branch(7, true, 1);
        e.prefetch(8, a, true);
        let kinds: Vec<bool> = q.iter().map(|i| matches!(i, Item::I(_))).collect();
        assert_eq!(kinds.len(), 8);
        assert!(kinds.iter().all(|&k| k));
    }
}
