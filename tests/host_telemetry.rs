//! Host-side engine telemetry: wall-clock attribution must *telescope*
//! (per-phase time sums to lane total), the heartbeat must emit valid
//! JSONL even when a run dies mid-flight, and — the load-bearing property
//! — turning telemetry on must never perturb a single guest-visible bit:
//! the same `RunStats`, trace events and metrics rows fall out whether the
//! engine profiles itself or not, on either engine, faults or no faults.

use smtp::trace::{MemorySink, SharedBuf};
use smtp::{
    build_system, AppKind, EngineKind, EngineTuning, ExperimentConfig, FaultConfig, HostProfile,
    MachineModel,
};

fn point(model: MachineModel, nodes: usize, ways: usize, seed: Option<u64>) -> ExperimentConfig {
    let mut e = ExperimentConfig::quick(model, AppKind::Fft, nodes, ways);
    e.scale = 0.1;
    // Pin the worker count in the *config* so every run — serial or
    // parallel, telemetry or not — records the same `RunStats.workers`.
    e.workers = Some(2);
    if let Some(seed) = seed {
        e.faults = FaultConfig::chaos(seed);
    }
    e
}

/// Everything guest-visible from one run, plus the host profile when
/// telemetry was on.
struct Observed {
    stats: String,
    events: usize,
    first_events: String,
    metrics: Vec<(u64, Vec<f64>)>,
    host: Option<HostProfile>,
}

fn observe(e: &ExperimentConfig, engine: EngineKind, telemetry: bool) -> Observed {
    observe_tuned(e, engine, telemetry, EngineTuning::default())
}

fn observe_tuned(
    e: &ExperimentConfig,
    engine: EngineKind,
    telemetry: bool,
    tuning: EngineTuning,
) -> Observed {
    let mut sys = build_system(e);
    sys.set_engine_tuning(tuning);
    sys.tracer().enable_all();
    let store = MemorySink::shared();
    sys.tracer().add_sink(Box::new(MemorySink::attach(&store)));
    sys.enable_metrics(5_000);
    if telemetry {
        sys.enable_host_telemetry();
    }
    let stats = sys
        .run_with(e.max_cycles, engine)
        .unwrap_or_else(|err| panic!("{engine} engine failed: {err}"));
    let metrics = sys.metrics().map(|s| s.rows().to_vec()).unwrap_or_default();
    let events = store.borrow().len();
    let first_events = format!("{:?}", &store.borrow()[..events.min(64)]);
    Observed {
        stats: format!("{stats:?}"),
        events,
        first_events,
        metrics,
        host: sys.take_host_profile(),
    }
}

fn assert_guest_identical(a: &Observed, b: &Observed, label: &str) {
    assert_eq!(a.stats, b.stats, "[{label}] RunStats diverged");
    assert_eq!(a.events, b.events, "[{label}] trace length diverged");
    assert_eq!(
        a.first_events, b.first_events,
        "[{label}] trace events diverged"
    );
    assert_eq!(a.metrics, b.metrics, "[{label}] metrics rows diverged");
}

/// Per-lane phase attribution must telescope: the per-phase nanoseconds
/// sum to the lane's total within epsilon (the `PhaseTimer` charges every
/// interval between consecutive clock stamps to exactly one phase, so the
/// error should in fact be zero).
fn assert_telescopes(host: &HostProfile, label: &str) {
    const EPS: f64 = 1e-6;
    assert!(!host.lanes.is_empty(), "[{label}] profile carries no lanes");
    for lane in &host.lanes {
        let sum = lane.phase_sum();
        let err = (sum as f64 - lane.total_ns as f64).abs() / (lane.total_ns.max(1) as f64);
        assert!(
            err <= EPS,
            "[{label}] lane {} does not telescope: phases sum to {sum} ns, total {} ns",
            lane.name,
            lane.total_ns
        );
    }
    assert!(
        host.telescoping_error() <= EPS,
        "[{label}] telescoping_error {} exceeds epsilon",
        host.telescoping_error()
    );
}

#[test]
fn serial_profile_telescopes_and_covers_the_run() {
    let e = point(MachineModel::SMTp, 2, 2, None);
    let o = observe(&e, EngineKind::Serial, true);
    let host = o.host.expect("telemetry on must yield a profile");
    assert_eq!(host.engine, "serial");
    assert_eq!(host.workers, 1);
    assert_eq!(host.lanes.len(), 1);
    assert!(host.epochs > 0, "no epochs recorded");
    assert!(host.sim_cycles > 0 && host.wall_ns > 0);
    assert_eq!(host.skipped_cycles, 0, "serial engine never skips");
    assert!(host.ticked_cycles >= host.sim_cycles);
    assert_telescopes(&host, "serial");
}

#[test]
fn parallel_profile_telescopes_and_covers_the_run() {
    let e = point(MachineModel::SMTp, 4, 2, None);
    let o = observe(&e, EngineKind::Parallel, true);
    let host = o.host.expect("telemetry on must yield a profile");
    assert_eq!(host.engine, "parallel");
    assert_eq!(host.workers, 2);
    // Coordinator lane plus one lane per worker.
    assert_eq!(host.lanes.len(), 1 + host.workers);
    assert!(host.epochs > 0, "no epochs recorded");
    assert_eq!(host.epochs, host.epoch_cycles.count());
    assert!(
        host.ticked_cycles + host.skipped_cycles > 0,
        "workers ticked nothing"
    );
    assert_telescopes(&host, "parallel");
    // Derived metrics stay in range.
    let bw = host.barrier_wait_frac();
    assert!(
        (0.0..=1.0).contains(&bw),
        "barrier_wait_frac {bw} out of range"
    );
    let skip = host.skip_efficiency();
    assert!(
        (0.0..=1.0).contains(&skip),
        "skip_efficiency {skip} out of range"
    );
    for u in host.worker_utilization() {
        assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
    }
}

#[test]
fn telemetry_never_perturbs_guest_state() {
    let e = point(MachineModel::SMTp, 2, 2, None);
    let oracle = observe(&e, EngineKind::Serial, false);
    let serial_telem = observe(&e, EngineKind::Serial, true);
    let parallel_off = observe(&e, EngineKind::Parallel, false);
    let parallel_telem = observe(&e, EngineKind::Parallel, true);
    assert_guest_identical(&oracle, &serial_telem, "serial telemetry on/off");
    assert_guest_identical(&oracle, &parallel_off, "serial vs parallel");
    assert_guest_identical(&oracle, &parallel_telem, "serial vs parallel+telemetry");
    assert!(oracle.host.is_none(), "telemetry off must not profile");
    assert!(parallel_telem.host.is_some());
}

#[test]
fn telemetry_never_perturbs_guest_state_under_chaos_faults() {
    for seed in [7u64, 0xC8A05] {
        let e = point(MachineModel::SMTp, 2, 2, Some(seed));
        let oracle = observe(&e, EngineKind::Serial, false);
        let serial_telem = observe(&e, EngineKind::Serial, true);
        let parallel_telem = observe(&e, EngineKind::Parallel, true);
        assert_guest_identical(
            &oracle,
            &serial_telem,
            &format!("chaos({seed}) serial telemetry on/off"),
        );
        assert_guest_identical(
            &oracle,
            &parallel_telem,
            &format!("chaos({seed}) serial vs parallel+telemetry"),
        );
        assert_telescopes(
            parallel_telem.host.as_ref().unwrap(),
            &format!("chaos({seed})"),
        );
    }
}

/// The tuned-up engine — adaptive epochs plus per-epoch rebalancing — must
/// keep both telemetry promises at once: guest bits identical to the serial
/// oracle, and host attribution that still telescopes, with and without
/// chaos faults.
#[test]
fn tuned_engine_telemetry_telescopes_and_stays_bit_identical() {
    let aggressive = EngineTuning {
        adaptive_epochs: true,
        rebalance_every: 1,
        rebalance_threshold: 1.0,
    };
    for seed in [None, Some(7u64)] {
        let e = point(MachineModel::SMTp, 4, 2, seed);
        let oracle = observe(&e, EngineKind::Serial, false);
        let tuned = observe_tuned(&e, EngineKind::Parallel, true, aggressive);
        let label = format!("tuned chaos={seed:?}");
        assert_guest_identical(&oracle, &tuned, &label);
        assert_telescopes(tuned.host.as_ref().unwrap(), &label);
    }
}

#[test]
fn heartbeat_never_perturbs_guest_state() {
    let e = point(MachineModel::SMTp, 2, 2, None);
    let oracle = observe(&e, EngineKind::Serial, false);
    let buf = SharedBuf::new();
    let mut sys = build_system(&e);
    sys.tracer().enable_all();
    let store = MemorySink::shared();
    sys.tracer().add_sink(Box::new(MemorySink::attach(&store)));
    sys.enable_metrics(5_000);
    // The serial engine only checks the heartbeat at watchdog boundaries
    // (every 8192 cycles); the quick run is ~25k cycles, so a 4k-cycle
    // interval yields a beat at each boundary the run reaches.
    sys.enable_heartbeat(4_000, Some(Box::new(buf.clone())));
    let stats = sys.run(e.max_cycles).expect("run must complete");
    assert_eq!(
        oracle.stats,
        format!("{stats:?}"),
        "heartbeat perturbed RunStats"
    );
    assert_eq!(
        oracle.events,
        store.borrow().len(),
        "heartbeat perturbed trace"
    );
    assert_heartbeat_jsonl(&buf.to_string_lossy(), 2);
}

/// Validate a heartbeat stream: line-complete JSONL, each line one
/// balanced JSON object carrying the expected keys.
fn assert_heartbeat_jsonl(text: &str, min_lines: usize) {
    assert!(!text.is_empty(), "no heartbeat output");
    assert!(
        text.ends_with('\n'),
        "heartbeat stream truncated mid-line: {:?}",
        &text[text.len().saturating_sub(80)..]
    );
    let mut lines = 0usize;
    for line in text.lines() {
        assert!(
            line.starts_with("{\"hb\":") && line.ends_with('}'),
            "malformed heartbeat line: {line:?}"
        );
        for key in [
            "\"cycle\":",
            "\"sim_cycles_per_sec\":",
            "\"workers\":",
            "\"util\":[",
        ] {
            assert!(line.contains(key), "heartbeat line missing {key}: {line:?}");
        }
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in line.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' if !in_str => depth += 1,
                '}' if !in_str => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced braces: {line:?}");
        assert!(!in_str, "unterminated string: {line:?}");
        lines += 1;
    }
    assert!(
        lines >= min_lines,
        "expected at least {min_lines} heartbeat lines, got {lines}"
    );
}

#[test]
fn parallel_heartbeat_emits_valid_jsonl() {
    let e = point(MachineModel::SMTp, 4, 2, None);
    let buf = SharedBuf::new();
    let mut sys = build_system(&e);
    sys.enable_heartbeat(10_000, Some(Box::new(buf.clone())));
    sys.run_with(e.max_cycles, EngineKind::Parallel)
        .expect("run must complete");
    assert_heartbeat_jsonl(&buf.to_string_lossy(), 2);
}

/// A run far shorter than the heartbeat interval must still leave liveness
/// records: one at run start, one at run end, on both engines. (The first
/// beat used to arrive only after a full interval, so short runs logged
/// nothing at all.)
#[test]
fn short_runs_still_emit_start_and_end_heartbeats() {
    for engine in [EngineKind::Serial, EngineKind::Parallel] {
        let e = point(MachineModel::SMTp, 2, 2, None);
        let buf = SharedBuf::new();
        let mut sys = build_system(&e);
        // An interval no quick run can ever reach.
        sys.enable_heartbeat(1_000_000_000, Some(Box::new(buf.clone())));
        sys.run_with(e.max_cycles, engine)
            .expect("run must complete");
        let text = buf.to_string_lossy();
        assert_heartbeat_jsonl(&text, 2);
        let first = text.lines().next().expect("checked non-empty");
        assert!(
            first.contains("\"epochs\":0"),
            "first beat should be the run-start record: {first:?}"
        );
    }
}

/// A sink that forwards to a [`SharedBuf`] but panics once it has seen a
/// given number of complete lines — simulating a run dying mid-flight
/// *inside* the heartbeat path.
struct PanicAfterLines {
    inner: SharedBuf,
    lines: usize,
    panic_after: usize,
}

impl std::io::Write for PanicAfterLines {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.inner.write(data)?;
        self.lines += data.iter().filter(|&&b| b == b'\n').count();
        if self.lines >= self.panic_after {
            panic!("sink failure after {} heartbeat lines", self.lines);
        }
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[test]
fn heartbeat_log_is_line_complete_even_after_a_mid_run_panic() {
    let e = point(MachineModel::SMTp, 2, 2, None);
    let buf = SharedBuf::new();
    let sink = PanicAfterLines {
        inner: buf.clone(),
        lines: 0,
        panic_after: 2,
    };
    let mut sys = build_system(&e);
    sys.enable_heartbeat(4_000, Some(Box::new(sink)));
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sys.run(e.max_cycles)));
    assert!(res.is_err(), "sink panic must surface");
    // The writer flushes per line, so everything before the failure is
    // still readable, line-complete JSONL.
    assert_heartbeat_jsonl(&buf.to_string_lossy(), 2);
}
