//! Property-style tests of the interconnect through its public API, driven
//! by a deterministic PRNG sweep instead of an external property-testing
//! framework.

use smtp::noc::{Msg, MsgKind, Network};
use smtp::types::{Addr, NetParams, NodeId, Region, SplitMix64};

fn line_for(dst: u16) -> smtp::types::LineAddr {
    Addr::new(NodeId(dst), Region::AppData, 0x100).line()
}

/// Every injected message is delivered exactly once, no earlier than its
/// injection time, and total deliveries match injections.
#[test]
fn conservation_and_causality() {
    let mut rng = SplitMix64::new(0xC0_15E2);
    for _case in 0..48 {
        let mut net = Network::new(16, 2.0, &NetParams::default());
        let mut injected = 0u64;
        let mut last_inject = 0u64;
        let n = rng.range(1, 80);
        for _ in 0..n {
            let (src, dst, at) = (
                rng.below(16) as u16,
                rng.below(16) as u16,
                rng.below(10_000),
            );
            if src == dst {
                continue;
            }
            net.inject(
                at,
                Msg::new(MsgKind::GetS, line_for(dst), NodeId(src), NodeId(dst)),
            );
            injected += 1;
            last_inject = last_inject.max(at);
        }
        let mut delivered = 0u64;
        let horizon = last_inject + 10_000_000;
        while let Some(m) = net.pop_arrived(horizon) {
            assert!(m.src != m.dst);
            delivered += 1;
        }
        assert_eq!(delivered, injected);
        assert_eq!(net.in_flight_count(), 0);
        assert_eq!(net.stats().messages, injected);
    }
}

/// Arrival times are no earlier than the topological minimum: hop latency
/// times hop count.
#[test]
fn zero_load_lower_bound() {
    let mut rng = SplitMix64::new(0x10AD);
    for _case in 0..256 {
        let (src, dst) = (rng.below(32) as u16, rng.below(32) as u16);
        if src == dst {
            continue;
        }
        let p = NetParams::default();
        let mut net = Network::new(32, 2.0, &p);
        let hops = net.topology().hops(NodeId(src), NodeId(dst)) as u64;
        net.inject(
            0,
            Msg::new(MsgKind::GetS, line_for(dst), NodeId(src), NodeId(dst)),
        );
        let at = net.next_arrival().unwrap();
        let hop_cycles = (p.hop_ns * 2.0).ceil() as u64;
        assert!(at >= hops * hop_cycles, "arrival {at} under {hops} hops");
    }
}

#[test]
fn bandwidth_limits_burst_throughput() {
    let p = NetParams::default();
    let mut net = Network::new(4, 2.0, &p);
    // 50 data replies down one link: the last must arrive at least
    // 49 serialization times after the first.
    for _ in 0..50 {
        net.inject(
            0,
            Msg::new(MsgKind::DataShared, line_for(1), NodeId(0), NodeId(1)),
        );
    }
    let mut last = 0u64;
    let mut first = u64::MAX;
    while let Some(t) = net.next_arrival() {
        first = first.min(t);
        last = last.max(t);
        assert!(net.pop_arrived(u64::MAX).is_some());
    }
    let ser = ((16 + 128) as f64 * 2.0 / p.link_gbps).ceil() as u64;
    assert!(
        last >= first + 49 * ser,
        "burst of 50 line transfers finished too fast: {first}..{last}"
    );
}
