//! Property-style tests of the interconnect through its public API, driven
//! by a deterministic PRNG sweep instead of an external property-testing
//! framework.

use smtp::noc::{Msg, MsgKind, Network};
use smtp::types::{Addr, FaultConfig, NetParams, NodeId, Region, SplitMix64};
use std::collections::HashMap;
use std::collections::VecDeque;

fn line_for(dst: u16) -> smtp::types::LineAddr {
    Addr::new(NodeId(dst), Region::AppData, 0x100).line()
}

/// Every injected message is delivered exactly once, no earlier than its
/// injection time, and total deliveries match injections.
#[test]
fn conservation_and_causality() {
    let mut rng = SplitMix64::new(0xC0_15E2);
    for _case in 0..48 {
        let mut net = Network::new(16, 2.0, &NetParams::default());
        let mut injected = 0u64;
        let mut last_inject = 0u64;
        let n = rng.range(1, 80);
        for _ in 0..n {
            let (src, dst, at) = (
                rng.below(16) as u16,
                rng.below(16) as u16,
                rng.below(10_000),
            );
            if src == dst {
                continue;
            }
            net.inject(
                at,
                Msg::new(MsgKind::GetS, line_for(dst), NodeId(src), NodeId(dst)),
            );
            injected += 1;
            last_inject = last_inject.max(at);
        }
        let mut delivered = 0u64;
        let horizon = last_inject + 10_000_000;
        while let Some(m) = net.pop_arrived(horizon) {
            assert!(m.src != m.dst);
            delivered += 1;
        }
        assert_eq!(delivered, injected);
        assert_eq!(net.in_flight_count(), 0);
        assert_eq!(net.stats().messages, injected);
    }
}

/// The link-level retry layer delivers every message **exactly once and in
/// injection order per (src, dst, virtual network) channel**, no matter
/// what seeded pattern of drops, corruption, duplication and delays the
/// links inject. Each failing case is reproducible from the printed seed.
#[test]
fn llp_exactly_once_in_order_under_faults() {
    let mut seed_rng = SplitMix64::new(0x11F0_57A7);
    let mut total_faults = 0u64;
    for case in 0..24 {
        let seed = seed_rng.next_u64();
        let mut faults = FaultConfig::chaos(seed);
        // Crank the link up to brutal rates; silence the non-link faults so
        // this exercises the retry layer in isolation.
        faults.link.drop_per_million = 100_000 + (seed % 250_000) as u32;
        faults.link.corrupt_per_million = 80_000;
        faults.link.duplicate_per_million = 120_000;
        faults.link.delay_per_million = 100_000;
        faults.link.max_delay_cycles = 400;
        faults.ecc = Default::default();
        faults.dispatch_stall = Default::default();
        faults.starvation = Default::default();
        faults.handler_delay = Default::default();

        let mut net = Network::new(8, 2.0, &NetParams::default());
        net.set_faults(&faults);

        // Per-channel FIFO of expected line addresses, in injection order.
        // Requests (GetS) and replies (DataShared) ride different virtual
        // networks, so they form separate channels per (src, dst) pair.
        let mut expected: HashMap<(u16, u16, bool), VecDeque<u64>> = HashMap::new();
        let mut inject_rng = SplitMix64::new(seed ^ 0xABCD);
        let n = inject_rng.range(20, 60);
        let mut injected = 0u64;
        for i in 0..n {
            let (src, dst) = (inject_rng.below(8) as u16, inject_rng.below(8) as u16);
            if src == dst {
                continue;
            }
            let is_req = inject_rng.below(2) == 0;
            let line = Addr::new(NodeId(dst), Region::AppData, i * 128).line();
            let kind = if is_req {
                MsgKind::GetS
            } else {
                MsgKind::DataShared
            };
            net.inject(i * 7, Msg::new(kind, line, NodeId(src), NodeId(dst)));
            expected
                .entry((src, dst, is_req))
                .or_default()
                .push_back(line.raw());
            injected += 1;
        }

        // Poll with advancing time (like the system run loop does) so
        // retransmit timers actually fire.
        let mut delivered = 0u64;
        let mut now = 0u64;
        while delivered < injected && now < 4_000_000 {
            while let Some(m) = net.pop_arrived(now) {
                let is_req = matches!(m.kind, MsgKind::GetS);
                let q = expected
                    .get_mut(&(m.src.0, m.dst.0, is_req))
                    .unwrap_or_else(|| panic!("case {case} seed {seed:#x}: unexpected {m}"));
                let want = q.pop_front().unwrap_or_else(|| {
                    panic!("case {case} seed {seed:#x}: duplicate delivery of {m}")
                });
                assert_eq!(
                    m.addr.raw(),
                    want,
                    "case {case} seed {seed:#x}: out-of-order delivery on \
                     ({:?} -> {:?}, req={is_req})",
                    m.src,
                    m.dst,
                );
                delivered += 1;
            }
            now += 32;
        }
        assert_eq!(
            delivered, injected,
            "case {case} seed {seed:#x}: lost messages"
        );
        assert_eq!(net.in_flight_count(), 0, "case {case} seed {seed:#x}");
        assert!(
            expected.values().all(|q| q.is_empty()),
            "case {case} seed {seed:#x}: undelivered channel residue"
        );
        let f = net.fault_counters();
        total_faults += f.link_drops + f.link_crc_errors + f.link_duplicates + f.link_delays;
    }
    // The sweep is meaningless if the injector never fired: with these
    // rates the expected fault count is in the hundreds.
    assert!(
        total_faults > 50,
        "only {total_faults} link faults injected"
    );
}

/// Arrival times are no earlier than the topological minimum: hop latency
/// times hop count.
#[test]
fn zero_load_lower_bound() {
    let mut rng = SplitMix64::new(0x10AD);
    for _case in 0..256 {
        let (src, dst) = (rng.below(32) as u16, rng.below(32) as u16);
        if src == dst {
            continue;
        }
        let p = NetParams::default();
        let mut net = Network::new(32, 2.0, &p);
        let hops = net.topology().hops(NodeId(src), NodeId(dst)) as u64;
        net.inject(
            0,
            Msg::new(MsgKind::GetS, line_for(dst), NodeId(src), NodeId(dst)),
        );
        let at = net.next_arrival().unwrap();
        let hop_cycles = (p.hop_ns * 2.0).ceil() as u64;
        assert!(at >= hops * hop_cycles, "arrival {at} under {hops} hops");
    }
}

#[test]
fn bandwidth_limits_burst_throughput() {
    let p = NetParams::default();
    let mut net = Network::new(4, 2.0, &p);
    // 50 data replies down one link: the last must arrive at least
    // 49 serialization times after the first.
    for _ in 0..50 {
        net.inject(
            0,
            Msg::new(MsgKind::DataShared, line_for(1), NodeId(0), NodeId(1)),
        );
    }
    let mut last = 0u64;
    let mut first = u64::MAX;
    while let Some(t) = net.next_arrival() {
        first = first.min(t);
        last = last.max(t);
        assert!(net.pop_arrived(u64::MAX).is_some());
    }
    let ser = ((16 + 128) as f64 * 2.0 / p.link_gbps).ceil() as u64;
    assert!(
        last >= first + 49 * ser,
        "burst of 50 line transfers finished too fast: {first}..{last}"
    );
}
