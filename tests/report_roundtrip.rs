//! `Report::json` parse-back round-trip: every metric the report emits
//! must survive `ParsedReport::from_json` unchanged, because the archive
//! and the diff engine operate entirely on the parsed form.

use smtp::{
    build_system, run_experiment, AppKind, EngineKind, ExperimentConfig, MachineModel,
    ParsedReport, Report, REPORT_SCHEMA_VERSION,
};

fn quick(model: MachineModel, nodes: usize) -> ExperimentConfig {
    ExperimentConfig::quick(model, AppKind::Fft, nodes, 2)
}

#[test]
fn parse_back_preserves_headline_metrics() {
    let e = quick(MachineModel::SMTp, 2);
    let stats = run_experiment(&e);
    let json = Report::new(&stats).json();
    let p = ParsedReport::from_json(&json).expect("round-trip parse");

    assert_eq!(p.schema_version, u64::from(REPORT_SCHEMA_VERSION));
    assert_eq!(p.model, stats.model.label());
    assert_eq!(p.app, stats.app.to_string());
    assert_eq!(p.nodes as usize, stats.nodes);
    assert_eq!(p.ways as usize, stats.ways);
    assert_eq!(p.cycles, stats.cycles);
    assert_eq!(p.app_instructions, stats.app_instructions);
    assert_eq!(p.protocol_instructions, stats.protocol_instructions);
    assert_eq!(p.handlers, stats.handlers);
    // Floats pass through the fixed-precision serializer; parse-back must
    // agree with re-serialization, not the in-memory value.
    assert!((p.ipc - stats.ipc()).abs() < 1e-3);

    // The merged remote-miss histogram (schema v3) matches the merge of
    // latency classes 2/3 done directly on the stats.
    let mut remote = stats.latency.end_to_end[2].clone();
    remote.merge(&stats.latency.end_to_end[3]);
    let rm = p.remote_miss.as_ref().expect("schema v3 remote_miss");
    assert_eq!(rm.count, remote.count());
    assert_eq!(rm.p95, remote.percentile(95.0));

    // Structural completeness: all 7 phases (8 boundaries), 6
    // critical-path categories, per-context thread rows.
    assert_eq!(p.phases.len(), 7);
    assert_eq!(p.critical_path.cycles.len(), 6);
    assert!(!p.thread_time.is_empty());
    let stall_sum: u64 = p.stall_totals().iter().sum();
    assert!(stall_sum > 0, "stall taxonomy empty after parse-back");
}

#[test]
fn parse_back_preserves_host_profile() {
    let mut e = quick(MachineModel::SMTp, 2);
    e.engine = EngineKind::Parallel;
    e.workers = Some(2);
    let mut sys = build_system(&e);
    sys.enable_host_telemetry();
    let stats = sys.run_with(e.max_cycles, e.engine).expect("run");
    let prof = sys.take_host_profile().expect("host profile");
    let json = Report::with_host_profile(&stats, &prof).json();
    let p = ParsedReport::from_json(&json).expect("round-trip parse");

    let h = p.host.as_ref().expect("host profile in report");
    assert_eq!(h.engine, "parallel");
    assert_eq!(h.workers, 2);
    assert!(h.wall_ns > 0);
    assert!(h.sim_cycles > 0);
}

#[test]
fn reports_without_host_profile_parse_with_none() {
    let e = quick(MachineModel::Base, 1);
    let stats = run_experiment(&e);
    let p = ParsedReport::from_json(&Report::new(&stats).json()).expect("parse");
    assert!(p.host.is_none());
}

#[test]
fn malformed_and_unsupported_reports_are_rejected() {
    assert!(ParsedReport::from_json("{").is_err());
    assert!(ParsedReport::from_json("[]").is_err());
    assert!(ParsedReport::from_json("{\"schema_version\":999}").is_err());
    // v1 predates the parseable layout.
    assert!(ParsedReport::from_json("{\"schema_version\":1}").is_err());
}
