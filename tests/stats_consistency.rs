//! Internal consistency of the statistics every experiment reports, and
//! conservation laws checked against the full event trace.

use smtp::trace::{Event, MemorySink};
use smtp::{build_system, run_experiment, AppKind, ExperimentConfig, MachineModel, RunStats};
use std::collections::HashSet;

fn check(r: &RunStats) {
    assert!(r.cycles > 0);
    assert!(
        r.memory_stall_cycles <= r.cycles as f64,
        "memory stall {} exceeds execution time {}",
        r.memory_stall_cycles,
        r.cycles
    );
    for (name, x) in [
        ("occupancy_peak", r.protocol_occupancy_peak),
        ("occupancy_mean", r.protocol_occupancy_mean),
        ("mispredict", r.protocol_mispredict_rate),
        ("squash", r.protocol_squash_frac),
        ("retired_frac", r.protocol_retired_frac),
        ("dir_hit", r.dir_cache_hit_rate),
        ("l1d_miss", r.l1d_app_miss_rate),
        ("l2_miss", r.l2_app_miss_rate),
    ] {
        assert!((0.0..=1.0).contains(&x), "{name} = {x} out of [0,1]");
    }
    assert!(r.protocol_occupancy_mean <= r.protocol_occupancy_peak + 1e-12);
    // Peak-of-peaks dominates mean-of-peaks.
    assert!(r.prot_branch_stack.0 as f64 + 1e-9 >= r.prot_branch_stack.1);
    assert!(r.prot_int_regs.0 as f64 + 1e-9 >= r.prot_int_regs.1);
    // Handlers ran iff there was any coherence activity.
    assert!(r.handlers > 0);
}

#[test]
fn stats_consistent_across_models() {
    for model in MachineModel::ALL {
        let r = run_experiment(&ExperimentConfig::quick(model, AppKind::Ocean, 2, 1));
        check(&r);
        if model.uses_protocol_thread() {
            assert!(r.protocol_instructions > 0);
            assert!(r.prot_int_regs.0 >= 32, "boot-mapped registers missing");
        } else {
            assert_eq!(r.protocol_instructions, 0);
            assert_eq!(r.protocol_mispredict_rate, 0.0);
        }
    }
}

#[test]
fn stats_consistent_across_apps() {
    for app in AppKind::ALL {
        let r = run_experiment(&ExperimentConfig::quick(MachineModel::SMTp, app, 2, 2));
        check(&r);
        assert!(r.app_instructions > 1_000, "{app}: no work");
    }
}

/// Trace-based conservation laws: the event stream must reconcile exactly
/// with the aggregate statistics the run reports.
fn check_trace_conservation(model: MachineModel) {
    let e = ExperimentConfig::quick(model, AppKind::Ocean, 2, 2);
    let mut sys = build_system(&e);
    let store = MemorySink::shared();
    sys.tracer().enable_all();
    sys.tracer().add_sink(Box::new(MemorySink::attach(&store)));
    let r = sys.run(e.max_cycles).expect("run must complete");

    let mut dispatches = 0u64;
    let mut completes = 0u64;
    let mut injects = 0u64;
    let mut delivers = 0u64;
    let mut acquires = 0u64;
    let mut open: HashSet<(u16, u64)> = HashSet::new();
    for (_, ev) in store.borrow().iter() {
        match *ev {
            Event::HandlerDispatch { node, seq, .. } => {
                dispatches += 1;
                assert!(
                    open.insert((node.0, seq)),
                    "duplicate handler dispatch (node {}, seq {seq})",
                    node.0
                );
            }
            Event::HandlerComplete { node, seq, .. } => {
                completes += 1;
                assert!(
                    open.remove(&(node.0, seq)),
                    "completion without dispatch (node {}, seq {seq})",
                    node.0
                );
            }
            Event::NetInject { .. } => injects += 1,
            Event::NetDeliver { .. } => delivers += 1,
            Event::LockAcquire { .. } => acquires += 1,
            _ => {}
        }
    }
    assert!(dispatches > 0, "traced run dispatched no handlers");
    assert_eq!(
        dispatches, completes,
        "every dispatched handler must complete"
    );
    assert!(open.is_empty(), "{} handlers never completed", open.len());
    assert_eq!(
        dispatches, r.handlers,
        "trace dispatch count disagrees with RunStats.handlers"
    );
    assert_eq!(injects, delivers, "network lost or duplicated messages");
    assert_eq!(
        injects, r.network.messages,
        "trace inject count disagrees with NetStats.messages"
    );
    assert_eq!(
        acquires, r.lock_acquires,
        "trace lock-acquire count disagrees with RunStats.lock_acquires"
    );
}

#[test]
fn trace_events_reconcile_with_stats_smtp() {
    check_trace_conservation(MachineModel::SMTp);
}

#[test]
fn trace_events_reconcile_with_stats_base() {
    check_trace_conservation(MachineModel::Base);
}

#[test]
fn integration_beats_the_off_chip_controller() {
    // The robust headline margin at one node: a perfect integrated
    // controller clearly beats the 400 MHz off-chip Base design on a
    // memory-intensive application.
    let mut e = ExperimentConfig::new(MachineModel::Base, AppKind::Fft, 1, 1);
    e.scale = 0.25;
    let base = run_experiment(&e);
    e.model = MachineModel::IntPerfect;
    let perfect = run_experiment(&e);
    assert!(
        (perfect.cycles as f64) < base.cycles as f64 * 0.97,
        "IntPerfect ({}) not clearly faster than Base ({})",
        perfect.cycles,
        base.cycles
    );
}
