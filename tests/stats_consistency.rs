//! Internal consistency of the statistics every experiment reports.

use smtp::{run_experiment, AppKind, ExperimentConfig, MachineModel, RunStats};

fn check(r: &RunStats) {
    assert!(r.cycles > 0);
    assert!(
        r.memory_stall_cycles <= r.cycles as f64,
        "memory stall {} exceeds execution time {}",
        r.memory_stall_cycles,
        r.cycles
    );
    for (name, x) in [
        ("occupancy_peak", r.protocol_occupancy_peak),
        ("occupancy_mean", r.protocol_occupancy_mean),
        ("mispredict", r.protocol_mispredict_rate),
        ("squash", r.protocol_squash_frac),
        ("retired_frac", r.protocol_retired_frac),
        ("dir_hit", r.dir_cache_hit_rate),
        ("l1d_miss", r.l1d_app_miss_rate),
        ("l2_miss", r.l2_app_miss_rate),
    ] {
        assert!((0.0..=1.0).contains(&x), "{name} = {x} out of [0,1]");
    }
    assert!(r.protocol_occupancy_mean <= r.protocol_occupancy_peak + 1e-12);
    // Peak-of-peaks dominates mean-of-peaks.
    assert!(r.prot_branch_stack.0 as f64 + 1e-9 >= r.prot_branch_stack.1);
    assert!(r.prot_int_regs.0 as f64 + 1e-9 >= r.prot_int_regs.1);
    // Handlers ran iff there was any coherence activity.
    assert!(r.handlers > 0);
}

#[test]
fn stats_consistent_across_models() {
    for model in MachineModel::ALL {
        let r = run_experiment(&ExperimentConfig::quick(model, AppKind::Ocean, 2, 1));
        check(&r);
        if model.uses_protocol_thread() {
            assert!(r.protocol_instructions > 0);
            assert!(r.prot_int_regs.0 >= 32, "boot-mapped registers missing");
        } else {
            assert_eq!(r.protocol_instructions, 0);
            assert_eq!(r.protocol_mispredict_rate, 0.0);
        }
    }
}

#[test]
fn stats_consistent_across_apps() {
    for app in AppKind::ALL {
        let r = run_experiment(&ExperimentConfig::quick(MachineModel::SMTp, app, 2, 2));
        check(&r);
        assert!(r.app_instructions > 1_000, "{app}: no work");
    }
}

#[test]
fn integration_beats_the_off_chip_controller() {
    // The robust headline margin at one node: a perfect integrated
    // controller clearly beats the 400 MHz off-chip Base design on a
    // memory-intensive application.
    let mut e = ExperimentConfig::new(MachineModel::Base, AppKind::Fft, 1, 1);
    e.scale = 0.25;
    let base = run_experiment(&e);
    e.model = MachineModel::IntPerfect;
    let perfect = run_experiment(&e);
    assert!(
        (perfect.cycles as f64) < base.cycles as f64 * 0.97,
        "IntPerfect ({}) not clearly faster than Base ({})",
        perfect.cycles,
        base.cycles
    );
}
