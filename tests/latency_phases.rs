//! Phase-accounted miss latency: reconciliation of the per-phase
//! decomposition against observed end-to-end latency, and paper-style
//! report generation over a 16-node run.

use smtp::types::latency::NUM_BOUNDARIES;
use smtp::types::{PhaseBoundary, TxnClass};
use smtp::{build_system, AppKind, ExperimentConfig, MachineModel, Report};

/// The tentpole invariant: for every profiled transaction — in particular
/// remote read-exclusive misses, the most complex path (request network,
/// dispatch queue, handler, reply network, fill, ack gathering) — the
/// phase components sum *exactly* to the observed end-to-end latency.
#[test]
fn phase_components_sum_exactly_to_end_to_end() {
    let exp = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Ocean, 2, 2);
    let mut sys = build_system(&exp);
    sys.profiler().keep_records(true);
    sys.run(exp.max_cycles).expect("run must complete");

    let records = sys.profiler().records();
    assert!(!records.is_empty(), "no transactions profiled");
    let mut remote_rx = 0;
    for rec in &records {
        let sum: u64 = rec.phases().iter().sum();
        assert_eq!(
            sum,
            rec.end_to_end(),
            "phases {:?} do not reconcile for {:?} line {:?}",
            rec.phases(),
            rec.requester,
            rec.line
        );
        if rec.remote && rec.class == TxnClass::ReadExclusive {
            remote_rx += 1;
            // A remote read-exclusive travels the full path: every
            // intermediate boundary must actually have been stamped, not
            // forward-filled.
            for b in [
                PhaseBoundary::ReqSent,
                PhaseBoundary::ReqDelivered,
                PhaseBoundary::Dispatched,
                PhaseBoundary::ReplySent,
                PhaseBoundary::ReplyDelivered,
                PhaseBoundary::Filled,
            ] {
                assert!(
                    rec.boundary(b).is_some(),
                    "{b:?} never stamped for remote read-exclusive on {:?}",
                    rec.line
                );
            }
        }
    }
    assert!(remote_rx > 0, "no remote read-exclusive misses profiled");
    assert_eq!(NUM_BOUNDARIES, 8);

    // The aggregate view must cover the same transactions.
    let stats = sys.collect();
    assert_eq!(stats.latency.count(), records.len() as u64);
    // Open-transaction leak check: a quiesced machine has none.
    assert_eq!(sys.profiler().open_count(), 0);
}

/// Aggregate reconciliation without per-record retention: the mean of the
/// phase distributions sums to the mean end-to-end latency.
#[test]
fn aggregate_phase_means_sum_to_mean_end_to_end() {
    let exp = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Fft, 4, 1);
    let mut sys = build_system(&exp);
    let stats = sys.run(exp.max_cycles).expect("run must complete");
    let n = stats.latency.count();
    assert!(n > 0);
    let phase_total: u128 = stats.latency.phases.iter().map(|d| d.sum()).sum();
    let e2e_total: u128 = stats.latency.end_to_end.iter().map(|h| h.sum()).sum();
    assert_eq!(phase_total, e2e_total);
}

/// Acceptance: a 16-node run yields a report with Table 7 protocol
/// occupancy and a Fig. 5/7-style per-thread time breakdown.
#[test]
fn sixteen_node_report_has_occupancy_and_thread_breakdown() {
    let mut exp = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Fft, 16, 2);
    exp.scale = 0.05;
    let mut sys = build_system(&exp);
    let stats = sys.run(exp.max_cycles).expect("run must complete");

    // One breakdown entry per application context machine-wide. The six
    // components partition the cycles up to the point the thread finished
    // (classification stops once a context completes its program).
    assert_eq!(stats.thread_time.len(), 16 * 2);
    for t in &stats.thread_time {
        let sum = t.busy + t.memory + t.sync + t.squash + t.fetch_starved + t.other;
        assert!(
            sum > 0 && sum <= t.cycles,
            "n{}c{} breakdown {sum} outside (0, {}]",
            t.node,
            t.ctx,
            t.cycles
        );
        assert!(t.busy > 0, "n{}c{} never committed", t.node, t.ctx);
    }
    assert!(stats.protocol_occupancy_mean > 0.0);
    assert!(stats.latency.end_to_end[2].count() > 0, "no remote reads");

    let report = Report::new(&stats);
    let text = report.text();
    assert!(text.contains("Protocol occupancy (Table 7)"));
    assert!(text.contains("occupancy peak node"));
    assert!(text.contains("Per-thread time breakdown (Fig. 5/7)"));
    assert!(text.contains("n15c1"), "last thread missing from breakdown");
    assert!(text.contains("Remote miss phase decomposition"));
    let json = report.json();
    assert!(json.contains("\"thread_time\""));
    assert!(json.contains("\"protocol_occupancy_mean\""));
}
