//! End-to-end machine tests: every machine model boots, runs a workload
//! to completion, quiesces, and reports sane statistics.

use smtp::{run_experiment, AppKind, ExperimentConfig, MachineModel};

fn quick(model: MachineModel, app: AppKind, nodes: usize, ways: usize) -> smtp::RunStats {
    let mut e = ExperimentConfig::quick(model, app, nodes, ways);
    e.max_cycles = 150_000_000;
    run_experiment(&e)
}

#[test]
fn every_model_completes_fft_on_two_nodes() {
    for model in MachineModel::ALL {
        let r = quick(model, AppKind::Fft, 2, 1);
        assert!(r.cycles > 1_000, "{model}: implausibly short run");
        assert!(r.app_instructions > 5_000, "{model}: no work done");
        assert!(r.handlers > 0, "{model}: coherence never ran");
        assert_eq!(
            r.protocol_instructions > 0,
            model.uses_protocol_thread(),
            "{model}: protocol thread usage mismatch"
        );
    }
}

#[test]
fn every_app_completes_on_smtp_four_nodes() {
    for app in AppKind::ALL {
        let r = quick(MachineModel::SMTp, app, 4, 1);
        assert!(r.app_instructions > 2_000, "{app}: no work done");
        assert!(r.network.messages > 0, "{app}: no communication");
        assert!(r.barrier_episodes > 0, "{app}: no synchronization");
    }
}

#[test]
fn smtp_beats_base_on_memory_bound_app() {
    // The paper's headline: SMTp is always faster than the non-integrated
    // Base design. Check it for the most memory-bound app on one node.
    let mut e = ExperimentConfig::new(MachineModel::Base, AppKind::Ocean, 1, 1);
    e.scale = 0.25;
    let base = run_experiment(&e);
    e.model = MachineModel::SMTp;
    let smtp = run_experiment(&e);
    assert!(
        smtp.cycles < base.cycles,
        "SMTp ({}) not faster than Base ({})",
        smtp.cycles,
        base.cycles
    );
}

#[test]
fn smtp_tracks_int512kb() {
    // Paper §4: SMTp performs within a few percent of Int512KB.
    let mut e = ExperimentConfig::new(MachineModel::Int512KB, AppKind::Fft, 2, 1);
    e.scale = 0.25;
    let int512 = run_experiment(&e);
    e.model = MachineModel::SMTp;
    let smtp = run_experiment(&e);
    let ratio = smtp.cycles as f64 / int512.cycles as f64;
    assert!(
        (0.85..1.15).contains(&ratio),
        "SMTp/Int512KB ratio {ratio:.3} outside ±15%"
    );
}

#[test]
fn four_way_smt_runs_sixty_four_threads() {
    let r = quick(MachineModel::SMTp, AppKind::Water, 16, 4);
    assert!(r.app_instructions > 10_000);
    assert_eq!(r.ways, 4);
    assert_eq!(r.nodes, 16);
}

#[test]
fn clock_scaling_keeps_shape() {
    // §4.2: at 4 GHz the relative ordering persists; absolute cycle counts
    // grow because memory latencies double in cycles.
    let mut e2 = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Fft, 2, 1);
    e2.scale = 0.2;
    let r2 = run_experiment(&e2);
    let mut e4 = e2.clone();
    e4.cpu_ghz = 4.0;
    let r4 = run_experiment(&e4);
    assert!(
        r4.cycles > r2.cycles,
        "4 GHz run should take more cycles ({} vs {})",
        r4.cycles,
        r2.cycles
    );
}
