//! Tests of the SMTp-specific mechanisms through the full system: the
//! protocol thread's reserved resources, look-ahead scheduling, bypass
//! buffers, and the protocol thread's low overhead (paper §2, §4.1).

use smtp::{run_experiment, AppKind, ExperimentConfig, MachineModel};

fn smtp_run(app: AppKind, nodes: usize, ways: usize, scale: f64) -> smtp::RunStats {
    let mut e = ExperimentConfig::new(MachineModel::SMTp, app, nodes, ways);
    e.scale = scale;
    e.max_cycles = 300_000_000;
    run_experiment(&e)
}

#[test]
fn protocol_thread_overhead_is_low() {
    // Paper Table 8: retired protocol instructions are a small fraction of
    // all retired instructions (0.2% – 8.4%).
    let r = smtp_run(AppKind::Fft, 4, 1, 0.2);
    assert!(r.protocol_instructions > 0);
    assert!(
        r.protocol_retired_frac < 0.35,
        "protocol thread retired {:.1}% of instructions",
        r.protocol_retired_frac * 100.0
    );
}

#[test]
fn protocol_occupancy_separates_app_classes() {
    // Memory-intensive apps keep the protocol thread busier than
    // compute-intensive ones (paper Table 7's two categories: FFT, FFTW,
    // Ocean, Radix vs LU, Water). Water is the cleanest compute-bound
    // representative at small scales (LU's blocks only amortize their
    // communication at the paper's full block counts).
    let mem_heavy = smtp_run(AppKind::Ocean, 2, 1, 0.3);
    let compute = smtp_run(AppKind::Water, 2, 1, 0.3);
    assert!(
        mem_heavy.protocol_occupancy_peak > compute.protocol_occupancy_peak,
        "Ocean occupancy {:.3} not above Water {:.3}",
        mem_heavy.protocol_occupancy_peak,
        compute.protocol_occupancy_peak
    );
}

#[test]
fn look_ahead_scheduling_does_not_hurt() {
    // Paper §2.3: LAS improves performance by up to 3.9%; at minimum it
    // must not slow things down materially.
    let mut on = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Fftw, 4, 1);
    on.scale = 0.2;
    let mut off = on.clone();
    off.look_ahead = false;
    let r_on = run_experiment(&on);
    let r_off = run_experiment(&off);
    let ratio = r_on.cycles as f64 / r_off.cycles as f64;
    assert!(
        ratio < 1.05,
        "LAS made things {:.1}% slower",
        (ratio - 1.0) * 100.0
    );
}

#[test]
fn minimal_bypass_buffers_still_complete() {
    // The bypass buffers exist for deadlock freedom; the machine must
    // complete even with a single line per buffer.
    let mut e = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Radix, 2, 2);
    e.bypass_lines = Some(1);
    let r = run_experiment(&e);
    assert!(r.app_instructions > 1_000);
}

#[test]
fn protocol_branches_are_mostly_predicted() {
    // Paper Table 8: ≥ ~89% protocol branch prediction accuracy.
    let r = smtp_run(AppKind::Fft, 4, 1, 0.25);
    assert!(
        r.protocol_mispredict_rate < 0.20,
        "protocol misprediction rate {:.1}%",
        r.protocol_mispredict_rate * 100.0
    );
}

#[test]
fn protocol_thread_holds_reserved_but_bounded_resources() {
    // Paper Table 9 bounds: branch stack <= 32, int regs <= 160 (1-way),
    // IQ <= 32, LSQ <= 64.
    let r = smtp_run(AppKind::Ocean, 2, 1, 0.2);
    assert!(r.prot_branch_stack.0 <= 32);
    assert!(r.prot_int_regs.0 >= 32, "32 logical registers stay mapped");
    assert!(r.prot_int_regs.0 <= 160);
    assert!(r.prot_int_queue.0 <= 32);
    assert!(r.prot_lsq.0 <= 64);
}
