//! End-to-end acceptance for the cross-run archive and the diff gate:
//!
//! * the same configuration run twice archives two entries whose diff has
//!   **zero guest delta**;
//! * a serial and a parallel run of the same configuration also diff to
//!   zero guest delta (the engines are bit-identical);
//! * a perturbed guest metric is detected and fails the gate.

use smtp::bench::{diff_reports, Archive, DiffOptions, RunKey};
use smtp::{
    build_system, AppKind, EngineKind, ExperimentConfig, MachineModel, ParsedReport, Report,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "smtp_archive_it_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn run_archived(archive: &mut Archive, e: &ExperimentConfig) -> usize {
    let mut sys = build_system(e);
    sys.enable_host_telemetry();
    let stats = sys.run_with(e.max_cycles, e.engine).expect("run");
    let prof = sys.take_host_profile().expect("host profile");
    let json = Report::with_host_profile(&stats, &prof).json();
    archive
        .append(&RunKey::for_experiment(e), &json)
        .expect("archive append")
        .line
}

#[test]
fn same_config_twice_diffs_to_zero_guest_delta() {
    let dir = tmp_dir("twice");
    let e = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Fft, 2, 2);
    let mut archive = Archive::open(&dir).unwrap();
    run_archived(&mut archive, &e);
    run_archived(&mut archive, &e);

    // Reopen from disk: the comparison must work from the archive alone.
    let archive = Archive::open(&dir).unwrap();
    let runs = archive.query().fingerprint(e.fingerprint()).run();
    assert_eq!(runs.len(), 2);
    assert_eq!(runs[0].key.guest_key(), runs[1].key.guest_key());
    let d = diff_reports(&runs[0].report, &runs[1].report, &DiffOptions::default());
    assert!(
        !d.has_guest_drift(),
        "same config drifted:\n{}",
        d.render_text()
    );
    assert!(d.gate().is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serial_vs_parallel_engines_diff_to_zero_guest_delta() {
    let dir = tmp_dir("engines");
    let mut e = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Ocean, 2, 1);
    let mut archive = Archive::open(&dir).unwrap();
    e.engine = EngineKind::Serial;
    run_archived(&mut archive, &e);
    e.engine = EngineKind::Parallel;
    e.workers = Some(2);
    run_archived(&mut archive, &e);

    // Engine choice must not change the fingerprint…
    let serial = archive
        .query()
        .engine("serial")
        .latest()
        .expect("serial entry");
    let parallel = archive
        .query()
        .engine("parallel")
        .latest()
        .expect("parallel entry");
    assert_eq!(serial.key.fingerprint, parallel.key.fingerprint);

    // …and the guest metrics must be bit-identical across engines.
    let d = diff_reports(&serial.report, &parallel.report, &DiffOptions::default());
    assert!(
        !d.has_guest_drift(),
        "engines diverged:\n{}",
        d.render_text()
    );
    // Wall clocks come from different engine populations: reported as a
    // note, never gated.
    assert!(d.wall.is_none() && d.wall_note.is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn perturbed_guest_cycles_fails_the_gate() {
    let e = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Fft, 1, 1);
    let stats = smtp::run_experiment(&e);
    let json = Report::new(&stats).json();
    let a = ParsedReport::from_json(&json).unwrap();
    // The same perturbation the CI self-test injects: prepend a digit to
    // the committed cycles value.
    let perturbed = json.replacen(
        &format!("\"cycles\":{}", stats.cycles),
        &format!("\"cycles\":1{}", stats.cycles),
        1,
    );
    assert_ne!(json, perturbed, "perturbation did not apply");
    let b = ParsedReport::from_json(&perturbed).unwrap();
    let d = diff_reports(&a, &b, &DiffOptions::default());
    assert!(d.has_guest_drift());
    let gate = d.gate().unwrap_err();
    assert!(gate.contains("cycles"), "gate message: {gate}");
}

#[test]
fn quickstart_archive_flag_layout_round_trips() {
    // The `--archive` flag writes through the same Archive API; prove the
    // on-disk layout survives an open/append/reopen cycle with a bare
    // (host-profile-free) report too.
    let dir = tmp_dir("layout");
    let e = ExperimentConfig::quick(MachineModel::Base, AppKind::Fft, 1, 1);
    let stats = smtp::run_experiment(&e);
    {
        let mut archive = Archive::open(&dir).unwrap();
        archive
            .append(&RunKey::for_experiment(&e), &Report::new(&stats).json())
            .unwrap();
    }
    let archive = Archive::open(&dir).unwrap();
    assert_eq!(archive.len(), 1);
    assert!(dir.join("runs.jsonl").is_file());
    let entry = archive.query().latest().unwrap();
    assert_eq!(entry.report.cycles, stats.cycles);
    assert!(entry.report.host.is_none());
    let _ = std::fs::remove_dir_all(&dir);
}
