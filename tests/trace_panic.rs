//! A run that fails mid-simulation must still leave a readable,
//! line-complete JSONL trace behind: the watchdog error path flushes the
//! tracer before returning, and [`smtp::trace::JsonlSink`] additionally
//! flushes on drop so even teardown cannot truncate a buffered line.

use smtp::trace::{JsonlSink, SharedBuf};
use smtp::{build_system, AppKind, ExperimentConfig, MachineModel, RunErrorKind};

#[test]
fn mid_run_failure_yields_valid_jsonl() {
    let buf = SharedBuf::new();
    let exp = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Ocean, 2, 2);
    let mut sys = build_system(&exp);
    sys.tracer().enable_all();
    sys.tracer()
        .add_sink(Box::new(JsonlSink::new(Box::new(buf.clone()))));
    // A cycle budget far below completion: the run fails mid-flight with
    // events buffered in the tracer and the sink.
    let err = sys.run(2_000).expect_err("run must hit the cycle budget");
    assert_eq!(err.kind, RunErrorKind::Deadlock);
    assert!(err.message.contains("did not quiesce"));
    assert!(
        !err.diagnosis.nodes.is_empty(),
        "diagnosis must carry per-node state"
    );
    drop(sys);

    let text = buf.to_string_lossy();
    assert!(!text.is_empty(), "no trace output survived the failure");
    assert!(
        text.ends_with('\n'),
        "stream truncated mid-line: {:?}",
        &text[text.len().saturating_sub(80)..]
    );
    let mut events = 0;
    for line in text.lines() {
        assert!(
            line.starts_with("{\"t\":") && line.ends_with('}'),
            "malformed JSONL line: {line:?}"
        );
        // Balanced braces and quote parity outside strings — each line
        // must be one complete JSON object.
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in line.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' if !in_str => depth += 1,
                '}' if !in_str => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced braces: {line:?}");
        assert!(!in_str, "unterminated string: {line:?}");
        events += 1;
    }
    assert!(events > 100, "suspiciously few events ({events})");
}
