//! The simulator must be perfectly deterministic: identical configurations
//! produce identical cycle counts, statistics, and — with tracing enabled —
//! byte-identical event streams.

use smtp::trace::{JsonlSink, SharedBuf};
use smtp::{build_system, run_experiment, AppKind, ExperimentConfig, MachineModel};

#[test]
fn identical_configs_produce_identical_runs() {
    let e = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Ocean, 2, 2);
    let a = run_experiment(&e);
    let b = run_experiment(&e);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.app_instructions, b.app_instructions);
    assert_eq!(a.protocol_instructions, b.protocol_instructions);
    assert_eq!(a.handlers, b.handlers);
    assert_eq!(a.network.messages, b.network.messages);
    assert_eq!(a.lock_acquires, b.lock_acquires);
}

/// Run one fully-traced experiment and return the raw JSONL byte stream.
fn traced_run(e: &ExperimentConfig) -> Vec<u8> {
    let mut sys = build_system(e);
    let buf = SharedBuf::default();
    sys.tracer().enable_all();
    sys.tracer()
        .add_sink(Box::new(JsonlSink::new(Box::new(buf.clone()))));
    sys.run(e.max_cycles).expect("run must complete");
    buf.contents()
}

#[test]
fn identically_seeded_runs_produce_byte_identical_traces() {
    let e = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Ocean, 2, 2);
    let a = traced_run(&e);
    let b = traced_run(&e);
    assert!(!a.is_empty(), "traced run produced no events");
    assert_eq!(a, b, "identical runs diverged in their trace streams");
    // Sanity: the stream is line-delimited JSON with cycle-stamped events.
    let text = String::from_utf8(a).expect("trace is valid UTF-8");
    for line in text.lines().take(50) {
        assert!(
            line.starts_with("{\"t\":") && line.ends_with('}'),
            "malformed JSONL line: {line}"
        );
    }
}

#[test]
fn scale_changes_the_run_monotonically() {
    let mut small = ExperimentConfig::quick(MachineModel::Base, AppKind::Lu, 1, 1);
    small.scale = 0.25;
    let mut large = small.clone();
    large.scale = 0.4;
    let rs = run_experiment(&small);
    let rl = run_experiment(&large);
    assert!(
        rl.app_instructions > rs.app_instructions,
        "bigger problem must execute more instructions"
    );
    assert!(rl.cycles > rs.cycles);
}
