//! The simulator must be perfectly deterministic: identical configurations
//! produce identical cycle counts and statistics.

use smtp::{run_experiment, AppKind, ExperimentConfig, MachineModel};

#[test]
fn identical_configs_produce_identical_runs() {
    let e = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Ocean, 2, 2);
    let a = run_experiment(&e);
    let b = run_experiment(&e);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.app_instructions, b.app_instructions);
    assert_eq!(a.protocol_instructions, b.protocol_instructions);
    assert_eq!(a.handlers, b.handlers);
    assert_eq!(a.network.messages, b.network.messages);
    assert_eq!(a.lock_acquires, b.lock_acquires);
}

#[test]
fn scale_changes_the_run_monotonically() {
    let mut small = ExperimentConfig::quick(MachineModel::Base, AppKind::Lu, 1, 1);
    small.scale = 0.25;
    let mut large = small.clone();
    large.scale = 0.4;
    let rs = run_experiment(&small);
    let rl = run_experiment(&large);
    assert!(
        rl.app_instructions > rs.app_instructions,
        "bigger problem must execute more instructions"
    );
    assert!(rl.cycles > rs.cycles);
}
