//! Causal-span invariants over whole runs: span conservation (every
//! dispatch pairs with exactly one completion on the same span; every
//! allocated span is freed exactly once), exact agreement between the
//! critical-path attribution and the phase profiler's end-to-end latency,
//! bit-identical span analysis under both execution engines, and a valid
//! Chrome trace (with flow events) even when the run dies mid-flight.

use smtp::trace::{ChromeTraceSink, Event, MemorySink, SharedBuf};
use smtp::types::{Cycle, SpanId};
use smtp::{
    build_system, AppKind, EngineKind, ExperimentConfig, FaultConfig, MachineModel, RunErrorKind,
};
use std::collections::{HashMap, HashSet};

fn quick(nodes: usize, ways: usize, chaos_seed: Option<u64>) -> ExperimentConfig {
    let mut e = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Fft, nodes, ways);
    e.scale = 0.1;
    if let Some(seed) = chaos_seed {
        e.faults = FaultConfig::chaos(seed);
    }
    e
}

/// Run one config on one engine with full tracing and return the event
/// stream.
fn traced_events(e: &ExperimentConfig, engine: EngineKind) -> Vec<(Cycle, Event)> {
    let mut sys = build_system(e);
    sys.tracer().enable_all();
    let store = MemorySink::shared();
    sys.tracer().add_sink(Box::new(MemorySink::attach(&store)));
    sys.run_with(e.max_cycles, engine)
        .unwrap_or_else(|err| panic!("{engine} run failed: {err}"));
    let events = store.borrow().clone();
    events
}

/// Span conservation over a completed run's event stream:
/// * every `HandlerDispatch` has exactly one `HandlerComplete` with the
///   same (node, seq) — and that completion carries the same span;
/// * every span that appears anywhere was allocated by exactly one
///   `MshrAlloc` and freed by exactly one `MshrFree`;
/// * every `LinkRetransmit` reuses the span of a previously injected
///   message (the LLP retransmits the buffered original, not a clone with
///   a fresh span).
///
/// Returns the number of retransmissions seen, so fault runs can assert
/// the retry path was actually exercised.
fn check_span_conservation(events: &[(Cycle, Event)], label: &str) -> usize {
    let mut dispatched: HashMap<(u16, u64), SpanId> = HashMap::new();
    let mut completed: HashMap<(u16, u64), SpanId> = HashMap::new();
    let mut allocated: HashMap<u64, usize> = HashMap::new();
    let mut freed: HashMap<u64, usize> = HashMap::new();
    let mut seen_spans: HashSet<u64> = HashSet::new();
    let mut injected: HashSet<u64> = HashSet::new();
    let mut retransmits = 0usize;
    for (_, ev) in events {
        let span = ev.span();
        if span.is_some() {
            seen_spans.insert(span.raw());
        }
        match *ev {
            Event::HandlerDispatch {
                node, seq, span, ..
            } => {
                let prev = dispatched.insert((node.0, seq), span);
                assert!(prev.is_none(), "[{label}] duplicate dispatch seq {seq}");
            }
            Event::HandlerComplete {
                node, seq, span, ..
            } => {
                let prev = completed.insert((node.0, seq), span);
                assert!(prev.is_none(), "[{label}] duplicate completion seq {seq}");
            }
            Event::MshrAlloc { span, .. } => *allocated.entry(span.raw()).or_default() += 1,
            Event::MshrFree { span, .. } => *freed.entry(span.raw()).or_default() += 1,
            Event::NetInject { span, .. } if span.is_some() => {
                injected.insert(span.raw());
            }
            Event::LinkRetransmit { span, .. } => {
                retransmits += 1;
                assert!(
                    span.is_some() && injected.contains(&span.raw()),
                    "[{label}] retransmit carries span {span} never injected"
                );
            }
            _ => {}
        }
    }
    assert!(!dispatched.is_empty(), "[{label}] no handlers dispatched");
    for (key, span) in &dispatched {
        let done = completed.get(key);
        assert_eq!(
            done,
            Some(span),
            "[{label}] dispatch (node {}, seq {}) span {span} has no matching completion",
            key.0,
            key.1
        );
    }
    assert_eq!(
        dispatched.len(),
        completed.len(),
        "[{label}] completions without a dispatch"
    );
    for (raw, count) in &allocated {
        assert_eq!(
            *count,
            1,
            "[{label}] span {} allocated {count} times",
            SpanId(*raw)
        );
        assert_eq!(
            freed.get(raw),
            Some(&1),
            "[{label}] span {} never freed exactly once",
            SpanId(*raw)
        );
    }
    // Conservation in the other direction: no span materializes out of
    // nowhere. Every span on any event traces back to an MSHR allocation.
    for raw in &seen_spans {
        assert!(
            allocated.contains_key(raw),
            "[{label}] span {} appears without an mshr_alloc",
            SpanId(*raw)
        );
    }
    retransmits
}

#[test]
fn spans_conserved_on_serial_engine() {
    let e = quick(2, 2, None);
    check_span_conservation(&traced_events(&e, EngineKind::Serial), "serial x2");
}

#[test]
fn spans_conserved_on_parallel_engine() {
    let e = quick(2, 2, None);
    check_span_conservation(&traced_events(&e, EngineKind::Parallel), "parallel x2");
}

#[test]
fn spans_conserved_under_chaos_faults_and_retransmits_reuse_spans() {
    // Chaos plans drop/corrupt packets, forcing the link-level retry layer
    // to retransmit; the retransmitted message must ride the original
    // span. Across these seeds at least one run must actually retry, or
    // the reuse assertion never fires.
    let mut total_retransmits = 0;
    for (seed, engine) in [
        (7, EngineKind::Serial),
        (11, EngineKind::Serial),
        (11, EngineKind::Parallel),
    ] {
        let e = quick(2, 1, Some(seed));
        let label = format!("chaos {seed} {engine}");
        total_retransmits += check_span_conservation(&traced_events(&e, engine), &label);
    }
    assert!(
        total_retransmits > 0,
        "no chaos seed exercised the retransmit path"
    );
}

/// The acceptance invariant: for a two-node remote-read experiment, the
/// per-edge critical-path attribution of every transaction sums *exactly*
/// to the end-to-end latency the phase profiler measured for the same
/// transaction — two fully independent instrumentation paths (causal spans
/// ride trace events; the profiler stamps phase boundaries keyed by
/// (requester, line)) telescoping to the same number.
#[test]
fn critical_path_telescopes_to_profiler_end_to_end() {
    let e = quick(2, 2, None);
    let mut sys = build_system(&e);
    sys.profiler().keep_records(true);
    // Keep every transaction as an exemplar so the invariant is checked
    // across the whole run, not just the slowest few.
    let causal = sys.enable_causal_spans(usize::MAX);
    let stats = sys.run(e.max_cycles).expect("run must complete");

    let exemplars = causal.exemplars();
    assert!(
        exemplars.len() > 50,
        "too few transactions to be meaningful ({})",
        exemplars.len()
    );
    assert_eq!(exemplars.len() as u64, stats.critical_path.spans);
    assert_eq!(causal.open_count(), 0, "quiesced run left spans open");

    // Every span telescopes internally, and is indexable by its identity
    // (one MSHR per (requester, line) at a time makes the key unique).
    let mut by_key: HashMap<(u16, u64, Cycle), u64> = HashMap::new();
    for ex in &exemplars {
        let per_edge_sum: u64 = ex.cats.iter().sum();
        assert_eq!(
            per_edge_sum,
            ex.latency(),
            "span {}: edge attributions don't telescope",
            ex.span
        );
        by_key.insert((ex.requester.0, ex.line.raw(), ex.alloc_at), per_edge_sum);
    }

    // Every transaction the profiler measured must have a causal span whose
    // per-edge attribution sums to the same end-to-end latency. (The
    // profiler deliberately skips instruction-fetch misses, so the span set
    // is a superset of the record set.)
    let records = sys.profiler().records();
    assert!(records.len() > 50, "too few profiled records");
    for r in &records {
        let alloc = r
            .boundary(smtp::types::PhaseBoundary::Alloc)
            .expect("every record starts at Alloc");
        let per_edge_sum = by_key
            .get(&(r.requester.0, r.line.raw(), alloc))
            .unwrap_or_else(|| {
                panic!(
                    "profiled transaction ({:?}, {:?}, alloc {alloc}) has no causal span",
                    r.requester, r.line
                )
            });
        assert_eq!(
            *per_edge_sum,
            r.end_to_end(),
            "({:?}, {:?}): critical path sums to {per_edge_sum} but the profiler \
             measured {} end-to-end",
            r.requester,
            r.line,
            r.end_to_end()
        );
    }
    // And the run-level aggregate telescopes too.
    let cp = &stats.critical_path;
    assert_eq!(cp.cycles.iter().sum::<u64>(), cp.total_cycles);
}

/// Causal analysis is deterministic across engines: the parallel engine's
/// capture/replay delivers events to sinks in serial order, so breakdown,
/// exemplars and the report section are bit-identical.
#[test]
fn causal_breakdown_identical_on_both_engines() {
    let e = quick(2, 2, None);
    let run = |engine| {
        let mut sys = build_system(&e);
        let causal = sys.enable_causal_spans(4);
        let stats = sys
            .run_with(e.max_cycles, engine)
            .unwrap_or_else(|err| panic!("{engine} run failed: {err}"));
        let trees: Vec<String> = causal.exemplars().iter().map(|x| x.render_tree()).collect();
        (stats.critical_path, trees)
    };
    let (serial_cp, serial_trees) = run(EngineKind::Serial);
    let (parallel_cp, parallel_trees) = run(EngineKind::Parallel);
    assert_eq!(serial_cp, parallel_cp);
    assert_eq!(serial_trees, parallel_trees);
}

/// A run that dies mid-simulation must still leave a *loadable* Chrome
/// trace behind: the error path flushes the tracer, and the sink
/// additionally closes the JSON array on drop. The whole buffer must be
/// one structurally valid JSON document containing flow events.
#[test]
fn chrome_trace_valid_json_after_midrun_failure() {
    let buf = SharedBuf::new();
    let e = quick(2, 2, None);
    let mut sys = build_system(&e);
    sys.enable_causal_spans(2);
    sys.tracer().add_sink(Box::new(ChromeTraceSink::new(
        Box::new(buf.clone()),
        e.nodes,
    )));
    let err = sys.run(2_000).expect_err("2k cycles cannot complete");
    assert_eq!(err.kind, RunErrorKind::Deadlock);
    drop(sys);

    let text = buf.to_string_lossy();
    assert_valid_json(&text);
    assert!(
        text.contains("\"ph\":\"s\"") && text.contains("\"ph\":\"f\""),
        "trace carries no flow events"
    );
    assert!(
        text.contains("\"bp\":\"e\""),
        "flow end not bound enclosing"
    );
}

/// The happy path writes valid JSON too, with matched flow open/close.
#[test]
fn chrome_trace_valid_json_end_to_end() {
    let buf = SharedBuf::new();
    let e = quick(2, 1, None);
    let mut sys = build_system(&e);
    sys.enable_causal_spans(2);
    sys.tracer().add_sink(Box::new(ChromeTraceSink::new(
        Box::new(buf.clone()),
        e.nodes,
    )));
    sys.run(e.max_cycles).expect("run must complete");
    drop(sys);
    let text = buf.to_string_lossy();
    assert_valid_json(&text);
    let starts = text.matches("\"ph\":\"s\"").count();
    let ends = text.matches("\"ph\":\"f\"").count();
    assert!(starts > 0, "no flow chains opened");
    assert_eq!(starts, ends, "unbalanced flow chains");
}

/// Minimal hand-rolled JSON validator: a recursive-descent parser over the
/// full value grammar (objects, arrays, strings with escapes, numbers,
/// literals). Panics with position context on the first violation. The
/// workspace deliberately has no serde; this is the test-side counterpart
/// of the hand-rolled writers.
fn assert_valid_json(text: &str) {
    let b = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    parse_value(b, &mut pos);
    skip_ws(b, &mut pos);
    assert_eq!(pos, b.len(), "trailing garbage at byte {pos}");
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) {
    assert!(*pos < b.len(), "unexpected end of input");
    match b[*pos] {
        b'{' => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return;
            }
            loop {
                skip_ws(b, pos);
                parse_string(b, pos);
                skip_ws(b, pos);
                assert_eq!(b.get(*pos), Some(&b':'), "expected ':' at byte {pos}");
                *pos += 1;
                skip_ws(b, pos);
                parse_value(b, pos);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return;
                    }
                    other => panic!("expected ',' or '}}' at byte {pos}, got {other:?}"),
                }
            }
        }
        b'[' => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return;
            }
            loop {
                skip_ws(b, pos);
                parse_value(b, pos);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return;
                    }
                    other => panic!("expected ',' or ']' at byte {pos}, got {other:?}"),
                }
            }
        }
        b'"' => parse_string(b, pos),
        b't' => expect_lit(b, pos, b"true"),
        b'f' => expect_lit(b, pos, b"false"),
        b'n' => expect_lit(b, pos, b"null"),
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        c => panic!("unexpected byte {c:?} at {pos}"),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) {
    assert_eq!(b.get(*pos), Some(&b'"'), "expected '\"' at byte {pos}");
    *pos += 1;
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return;
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        assert!(
                            *pos + 4 < b.len()
                                && b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit),
                            "bad \\u escape at byte {pos}"
                        );
                        *pos += 5;
                    }
                    other => panic!("bad escape {other:?} at byte {pos}"),
                }
            }
            c if c < 0x20 => panic!("raw control byte {c:#x} in string at {pos}"),
            _ => *pos += 1,
        }
    }
    panic!("unterminated string");
}

fn parse_number(b: &[u8], pos: &mut usize) {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    assert!(*pos > start, "empty number at byte {start}");
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &[u8]) {
    assert!(
        b[*pos..].starts_with(lit),
        "bad literal at byte {pos}: expected {:?}",
        std::str::from_utf8(lit).unwrap()
    );
    *pos += lit.len();
}
