//! Chaos soak: sweep a matrix of fault intensities — link loss × ECC error
//! rate × stall windows — over small end-to-end machines. Every cell must
//! either complete with sane statistics or return a diagnosable
//! [`smtp::RunError`]. **No cell may panic**: each run is wrapped in
//! `catch_unwind` to prove the failure path is structured all the way down.

use smtp::types::{EccFaults, LinkFaults, StallFaults};
use smtp::{
    build_system, try_run_experiment, AppKind, EngineKind, EngineTuning, ExperimentConfig,
    FaultConfig, MachineModel, RunError, RunErrorKind, RunStats,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Run one small SMTp machine under `faults`, inside `catch_unwind`: a panic
/// anywhere in the fault path fails the test with the cell label. Every cell
/// runs on both engines — the serial oracle, and the parallel engine with
/// adaptive epochs and per-epoch rebalancing turned all the way up — and the
/// two outcomes (stats or structured error, every field) must match exactly.
fn run_cell(label: &str, faults: FaultConfig) -> Result<RunStats, RunError> {
    let mut exp = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Fft, 2, 1);
    exp.scale = 0.05;
    exp.faults = faults;
    exp.workers = Some(2);
    // Bound each cell: a machine that limps along under heavy faults without
    // quiescing ends in a diagnosable `Deadlock`, which the matrix accepts.
    exp.max_cycles = 4_000_000;
    let serial = catch_unwind(AssertUnwindSafe(|| {
        let mut sys = build_system(&exp);
        sys.enable_invariant_checks(25_000);
        sys.run(exp.max_cycles)
    }))
    .unwrap_or_else(|_| panic!("cell {label}: panicked instead of returning RunError"));
    let parallel = catch_unwind(AssertUnwindSafe(|| {
        let mut sys = build_system(&exp);
        sys.enable_invariant_checks(25_000);
        sys.set_engine_tuning(EngineTuning {
            adaptive_epochs: true,
            rebalance_every: 1,
            rebalance_threshold: 1.0,
        });
        sys.run_with(exp.max_cycles, EngineKind::Parallel)
    }))
    .unwrap_or_else(|_| panic!("cell {label}: parallel engine panicked under faults"));
    assert_eq!(
        format!("{serial:?}"),
        format!("{parallel:?}"),
        "cell {label}: engines diverged under faults"
    );
    serial
}

#[test]
fn fault_matrix_completes_or_diagnoses_without_panicking() {
    let drop_rates: [u32; 3] = [0, 30_000, 120_000];
    let ecc_rates: [u32; 2] = [0, 60_000];
    let stall_modes: [bool; 2] = [false, true];

    for &drop in &drop_rates {
        for &ecc in &ecc_rates {
            for &stall in &stall_modes {
                if drop == 0 && ecc == 0 && !stall {
                    continue; // the clean cell is the rest of the test suite
                }
                let label = format!("drop={drop} ecc={ecc} stall={stall}");
                let seed = 0x50A4 ^ u64::from(drop) ^ (u64::from(ecc) << 20) ^ (stall as u64);
                let faults = FaultConfig {
                    enabled: true,
                    seed,
                    link: LinkFaults {
                        drop_per_million: drop,
                        corrupt_per_million: drop / 2,
                        duplicate_per_million: drop / 2,
                        delay_per_million: drop,
                        max_delay_cycles: 150,
                    },
                    ecc: EccFaults {
                        correctable_per_million: ecc,
                        uncorrectable_per_million: 0,
                        correction_cycles: 24,
                    },
                    dispatch_stall: if stall {
                        StallFaults {
                            window_per_million: 80_000,
                            window_cycles: 400,
                            check_every: 4096,
                        }
                    } else {
                        StallFaults::default()
                    },
                    starvation: if stall {
                        StallFaults {
                            window_per_million: 80_000,
                            window_cycles: 250,
                            check_every: 4096,
                        }
                    } else {
                        StallFaults::default()
                    },
                    handler_delay: Default::default(),
                };
                match run_cell(&label, faults) {
                    Ok(_) => {} // recovered end to end — the common case
                    Err(err) => {
                        // A structured failure is acceptable, but only with a
                        // usable diagnosis attached.
                        assert!(
                            !err.message.is_empty(),
                            "cell {label}: error without a message"
                        );
                        assert!(
                            !err.diagnosis.nodes.is_empty(),
                            "cell {label}: {} without per-node diagnosis",
                            err.kind.name()
                        );
                    }
                }
            }
        }
    }
}

/// Moderate chaos must be fully recoverable: the run completes, the fault
/// counters show the injector actually fired, and the retry layer earned
/// its keep.
#[test]
fn chaos_run_recovers_and_reports_fault_counters() {
    let mut exp = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Fft, 2, 1);
    exp.scale = 0.08;
    exp.faults = FaultConfig::chaos(0xC4A0);
    let stats = try_run_experiment(&exp).expect("chaos run must recover");
    assert!(stats.cycles > 0);
    let f = &stats.faults;
    assert!(f.any(), "chaos preset injected nothing");
    assert!(
        f.link_drops + f.link_crc_errors == 0 || f.link_retransmits > 0,
        "packets were lost ({} drops, {} CRC) but never retransmitted",
        f.link_drops,
        f.link_crc_errors
    );
    assert_eq!(f.ecc_uncorrectable, 0, "chaos preset must stay correctable");
}

/// Identically seeded fault runs are cycle-for-cycle reproducible — the whole
/// point of deterministic injection.
#[test]
fn seeded_fault_runs_are_deterministic() {
    let mut exp = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Ocean, 2, 1);
    exp.scale = 0.06;
    exp.faults = FaultConfig::chaos(99);
    let a = try_run_experiment(&exp).expect("run must complete");
    let b = try_run_experiment(&exp).expect("run must complete");
    assert_eq!(a.cycles, b.cycles, "fault runs diverged in cycle count");
    assert_eq!(a.faults, b.faults, "fault runs diverged in fault schedule");
    assert_eq!(a.network.messages, b.network.messages);
    assert!(a.faults.any());
}

/// Total packet loss is unrecoverable by design: the retry layer keeps
/// retransmitting but nothing ever arrives, so the forward-progress watchdog
/// must report a deadlock with a populated diagnosis — not hang, not panic.
#[test]
fn total_packet_loss_is_diagnosed_as_deadlock() {
    let mut exp = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Fft, 2, 1);
    exp.scale = 0.05;
    // Spinning threads keep committing instructions, so the watchdog sees
    // "progress" while the interconnect is dead; the cycle budget is what
    // bounds this run.
    exp.max_cycles = 1_500_000;
    exp.faults = FaultConfig {
        enabled: true,
        seed: 0xDEAD,
        link: LinkFaults {
            drop_per_million: 1_000_000,
            ..Default::default()
        },
        ..FaultConfig::default()
    };
    let err = catch_unwind(AssertUnwindSafe(|| {
        let mut sys = build_system(&exp);
        sys.run(exp.max_cycles)
    }))
    .expect("total packet loss must not panic")
    .expect_err("a machine with a dead interconnect cannot finish");
    assert_eq!(err.kind, RunErrorKind::Deadlock, "got: {err}");
    assert!(err.cycle > 0);
    assert!(
        !err.diagnosis.nodes.is_empty(),
        "deadlock diagnosis must carry per-node state"
    );
    assert!(
        !err.diagnosis.stuck_transactions.is_empty(),
        "deadlock diagnosis must name the stuck transactions"
    );
}

/// An uncorrectable ECC error is a data-integrity loss: the watchdog must
/// stop the run with `UnrecoverableFault` naming the faulting channel.
#[test]
fn uncorrectable_ecc_is_surfaced_as_unrecoverable_fault() {
    let mut exp = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Fft, 2, 1);
    exp.scale = 0.05;
    exp.max_cycles = 2_000_000;
    exp.faults = FaultConfig {
        enabled: true,
        seed: 7,
        ecc: EccFaults {
            correctable_per_million: 0,
            uncorrectable_per_million: 1_000_000,
            correction_cycles: 24,
        },
        ..FaultConfig::default()
    };
    let err = catch_unwind(AssertUnwindSafe(|| {
        let mut sys = build_system(&exp);
        sys.run(exp.max_cycles)
    }))
    .expect("uncorrectable ECC must not panic")
    .expect_err("poisoned data must abort the run");
    assert_eq!(err.kind, RunErrorKind::UnrecoverableFault, "got: {err}");
    assert!(
        err.message.contains("uncorrectable ECC"),
        "message must name the fault: {}",
        err.message
    );
    assert!(err.diagnosis.faults.ecc_uncorrectable > 0);
}
