//! Coherence-protocol invariants checked through the full system, plus a
//! property-based stress of the home directory against a random but legal
//! message interleaving driven by a model of requester caches.

use smtp::noc::{Msg, MsgKind};
use smtp::protocol::{handle, must_apply, DirState, Directory, Outcome};
use smtp::types::{Addr, NodeId, Region, SharerSet, SplitMix64};
use smtp::{run_experiment, AppKind, ExperimentConfig, MachineModel};
use std::collections::VecDeque;

#[test]
fn directories_quiesce_after_every_run() {
    // `System::run` only returns once every directory has no busy lines and
    // no pending queue; reaching here proves the protocol drained.
    for model in [MachineModel::SMTp, MachineModel::Base] {
        let r = run_experiment(&ExperimentConfig::quick(model, AppKind::Radix, 4, 1));
        assert!(r.handlers > 0);
    }
}

#[test]
fn locks_are_all_released_at_the_end() {
    let r = run_experiment(&ExperimentConfig::quick(
        MachineModel::SMTp,
        AppKind::Water,
        2,
        2,
    ));
    assert!(r.lock_acquires > 0, "Water must take molecule locks");
    // System::run would have panicked on a held lock via non-quiescence of
    // the app threads; additionally the manager asserts balanced releases.
}

/// A reference model of one line: requester states + home directory, used
/// to generate *legal* message sequences for the property test.
struct LineModel {
    dir: Directory,
    line: smtp::types::LineAddr,
    /// Per-node requester state: 0 = invalid, 1 = shared, 2 = exclusive.
    state: Vec<u8>,
    /// Requests currently outstanding per node (at most one).
    busy: Vec<bool>,
    /// Messages queued for home delivery.
    wire: VecDeque<Msg>,
}

impl LineModel {
    fn new(nodes: usize) -> LineModel {
        let home = NodeId(0);
        LineModel {
            dir: Directory::new(home),
            line: Addr::new(home, Region::AppData, 0x8000).line(),
            state: vec![0; nodes],
            busy: vec![false; nodes],
            wire: VecDeque::new(),
        }
    }

    /// Deliver one home-directed message, applying the transition's sends
    /// to the requester model instantly (a serialized, in-order network —
    /// the strongest-ordering special case the protocol must still
    /// handle).
    fn deliver(&mut self, msg: Msg) {
        let home = self.dir.home();
        match self.dir.process(&msg, 0) {
            None => self.wire.push_back(msg), // deferred: retry later
            Some(t) => {
                for s in &t.sends {
                    match s.kind {
                        MsgKind::DataShared => {
                            self.state[s.dst.idx()] = 1;
                            self.busy[s.dst.idx()] = false;
                        }
                        MsgKind::DataExcl { .. } | MsgKind::UpgradeAck { .. } => {
                            self.state[s.dst.idx()] = 2;
                            self.busy[s.dst.idx()] = false;
                        }
                        MsgKind::Inval { .. } => self.state[s.dst.idx()] = 0,
                        MsgKind::IntervShared { requester } => {
                            // Owner downgrades, requester gets data.
                            self.state[s.dst.idx()] = 1;
                            self.state[requester.idx()] = 1;
                            self.busy[requester.idx()] = false;
                            self.wire.push_back(Msg::new(
                                MsgKind::SharingWb { requester },
                                self.line,
                                s.dst,
                                home,
                            ));
                        }
                        MsgKind::IntervExcl { requester } => {
                            self.state[s.dst.idx()] = 0;
                            self.state[requester.idx()] = 2;
                            self.busy[requester.idx()] = false;
                            self.wire.push_back(Msg::new(
                                MsgKind::TransferAck {
                                    new_owner: requester,
                                },
                                self.line,
                                s.dst,
                                home,
                            ));
                        }
                        MsgKind::WbAck => self.busy[s.dst.idx()] = false,
                        _ => {}
                    }
                }
                if t.unbusied {
                    for m in self.dir.take_pending(self.line) {
                        self.wire.push_back(m);
                    }
                }
            }
        }
    }

    fn check(&self) {
        self.dir.check_invariants();
        // Single-writer invariant on the requester model.
        let owners = self.state.iter().filter(|&&s| s == 2).count();
        assert!(owners <= 1, "two exclusive owners");
        if owners == 1 {
            assert!(
                self.state.iter().filter(|&&s| s == 1).count() == 0,
                "shared copies alongside an exclusive owner"
            );
        }
        // Directory agreement when idle.
        if !self.dir.state(self.line).is_busy() && self.wire.is_empty() {
            match self.dir.state(self.line) {
                DirState::Exclusive(n) => assert_eq!(self.state[n.idx()], 2),
                DirState::Shared(s) => {
                    // Over-inclusion allowed (silent evictions don't exist
                    // in this model, so it is exact here).
                    for n in s.iter() {
                        assert_eq!(self.state[n.idx()], 1, "directory lists non-sharer");
                    }
                }
                DirState::Unowned => {}
                _ => unreachable!(),
            }
        }
    }
}

/// Random legal request sequences against one line never violate the
/// single-writer / no-stale-sharers invariants and always drain.
/// Deterministic PRNG sweep over 64 random interleavings.
#[test]
fn random_access_interleavings_preserve_invariants() {
    let mut rng = SplitMix64::new(0xC0DE);
    for _case in 0..64 {
        let nodes = 4;
        let mut m = LineModel::new(nodes);
        let steps = rng.range(1, 60);
        for _ in 0..steps {
            let (node, op) = (rng.below(4) as u16, rng.below(3) as u8);
            let n = NodeId(node);
            // Drain one wire message between requests (partial overlap).
            if let Some(w) = m.wire.pop_front() {
                m.deliver(w);
            }
            if m.busy[n.idx()] {
                continue;
            }
            let kind = match (op, m.state[n.idx()]) {
                (0, 0) => Some(MsgKind::GetS),
                (1, 0) => Some(MsgKind::GetX),
                (1, 1) => Some(MsgKind::Upgrade),
                (2, 2) => Some(MsgKind::Put { dirty: true }),
                _ => None,
            };
            if let Some(k) = kind {
                if matches!(k, MsgKind::Put { .. }) {
                    m.state[n.idx()] = 0;
                }
                m.busy[n.idx()] = true;
                let msg = Msg::new(k, m.line, n, m.dir.home());
                m.deliver(msg);
            }
            m.check();
        }
        // Drain everything.
        let mut guard = 0;
        while let Some(w) = m.wire.pop_front() {
            m.deliver(w);
            guard += 1;
            assert!(guard < 10_000, "wire did not drain");
        }
        m.check();
        assert!(!m.dir.state(m.line).is_busy());
    }
}

#[test]
fn transition_function_covers_every_stable_state() {
    let home = NodeId(0);
    let line = Addr::new(home, Region::AppData, 0x100).line();
    let sharers: SharerSet = [NodeId(1), NodeId(2)].into_iter().collect();
    let stable = [
        DirState::Unowned,
        DirState::Shared(sharers),
        DirState::Exclusive(NodeId(3)),
    ];
    for st in stable {
        for kind in [MsgKind::GetS, MsgKind::GetX] {
            let t = must_apply(home, &st, &Msg::new(kind, line, NodeId(4), home));
            assert!(!t.sends.is_empty(), "{st:?} x {kind:?} sends nothing");
        }
    }
    // Busy states defer requests.
    let busy = DirState::BusyShared {
        owner: NodeId(1),
        requester: NodeId(2),
    };
    assert_eq!(
        handle(home, &busy, &Msg::new(MsgKind::GetS, line, NodeId(3), home)),
        Outcome::Defer
    );
}
