//! Functional (timing-free) execution of every application generator
//! against the global synchronization manager, through public APIs only:
//! all threads terminate, sync state drains, and the tree barrier episode
//! count matches its closed form.

use smtp::isa::{InstSource, Op, SyncEnv};
use smtp::types::{Ctx, NodeId};
use smtp::workloads::{make_thread, AppKind, SyncManager, ThreadGen, WorkloadCfg};

fn pump(kind: AppKind, nodes: usize, ways: usize, scale: f64) -> (Vec<u64>, SyncManager) {
    let mut cfg = WorkloadCfg::new(nodes, ways);
    cfg.scale = scale;
    let total = cfg.total_threads();
    let mut mgr = SyncManager::new(total);
    let mut gens: Vec<(NodeId, Ctx, ThreadGen)> = (0..nodes as u16)
        .flat_map(|n| (0..ways as u8).map(move |c| (NodeId(n), Ctx(c))))
        .map(|(n, c)| (n, c, make_thread(kind, &cfg, n, c)))
        .collect();
    let mut counts = vec![0u64; total];
    let mut halted = vec![false; total];
    let mut steps = 0u64;
    while halted.iter().any(|h| !h) {
        steps += 1;
        assert!(steps < 100_000_000, "{kind} functional run hung");
        for (t, (n, c, g)) in gens.iter_mut().enumerate() {
            if halted[t] {
                continue;
            }
            let i = g.next_inst();
            counts[t] += 1;
            match i.op {
                Op::Halt => halted[t] = true,
                Op::SyncBranch { cond } => {
                    let sat = mgr.poll(*n, *c, cond);
                    g.sync_result(smtp::isa::SyncOutcome::Cond(sat));
                }
                Op::SyncStore { op, .. } => {
                    let out = mgr.sync_store(*n, *c, op);
                    g.sync_result(out);
                }
                _ => {}
            }
        }
    }
    (counts, mgr)
}

#[test]
fn all_apps_terminate_on_odd_thread_counts() {
    // 3 threads: a ragged barrier tree (group sizes 3 at the leaf).
    for kind in AppKind::ALL {
        let (counts, mgr) = pump(kind, 1, 3, 0.12);
        assert!(
            counts.iter().all(|&c| c > 50),
            "{kind}: a thread did no work"
        );
        assert!(!mgr.any_lock_held(), "{kind}: lock leaked");
    }
}

#[test]
fn barrier_episode_count_matches_closed_form() {
    // FFT crosses exactly 4 barriers; with 8 threads the radix-4 tree has
    // 2 leaf groups + 1 root = 3 episodes per crossing.
    let (_, mgr) = pump(AppKind::Fft, 4, 2, 0.12);
    assert_eq!(mgr.stats().barrier_episodes, 4 * 3);
}

#[test]
fn water_lock_traffic_scales_with_molecules() {
    let (_, small) = pump(AppKind::Water, 2, 1, 0.15);
    let (_, large) = pump(AppKind::Water, 2, 1, 0.3);
    assert!(
        large.stats().lock_acquires > small.stats().lock_acquires,
        "more molecules must take more per-molecule locks"
    );
}

#[test]
fn sixty_four_thread_generators_drain() {
    let (counts, mgr) = pump(AppKind::Radix, 16, 4, 0.1);
    assert_eq!(counts.len(), 64);
    assert!(mgr.stats().barrier_episodes > 0);
}
