//! Spatial hot-spot attribution: the per-line trackers, home-node heatmap
//! and link utilization matrix are *guest state* — they must come out
//! bit-identical on either execution engine, under any host-side tuning,
//! with or without chaos faults. And arming the layer must never perturb
//! the rest of the guest: same cycles, same instructions, same trace.

use smtp::trace::MemorySink;
use smtp::{
    build_system, AppKind, EngineKind, EngineTuning, ExperimentConfig, FaultConfig, MachineModel,
    Report,
};

fn point(nodes: usize, ways: usize, seed: Option<u64>) -> ExperimentConfig {
    let mut e = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Fft, nodes, ways);
    e.scale = 0.1;
    e.workers = Some(2);
    if let Some(seed) = seed {
        e.faults = FaultConfig::chaos(seed);
    }
    e
}

/// One run with spatial attribution armed: the full `RunStats` debug
/// rendering (which includes every spatial counter) and the v4 report
/// JSON (which includes the serialized `spatial` section).
fn observe(e: &ExperimentConfig, engine: EngineKind, tuning: EngineTuning) -> (String, String) {
    let mut sys = build_system(e);
    sys.set_engine_tuning(tuning);
    sys.enable_spatial(32);
    let stats = sys
        .run_with(e.max_cycles, engine)
        .unwrap_or_else(|err| panic!("{engine} engine failed: {err}"));
    let json = Report::new(&stats).json();
    (format!("{stats:?}"), json)
}

fn aggressive() -> EngineTuning {
    EngineTuning {
        adaptive_epochs: true,
        rebalance_every: 1,
        rebalance_threshold: 1.0,
    }
}

#[test]
fn spatial_state_is_bit_identical_across_engines_tunings_and_chaos() {
    for seed in [None, Some(7u64), Some(0xC8A05)] {
        let e = point(4, 2, seed);
        let oracle = observe(&e, EngineKind::Serial, EngineTuning::default());
        for (engine, tuning, label) in [
            (EngineKind::Parallel, EngineTuning::default(), "parallel"),
            (EngineKind::Parallel, aggressive(), "parallel+aggressive"),
            (EngineKind::Serial, aggressive(), "serial+aggressive"),
        ] {
            let got = observe(&e, engine, tuning);
            assert_eq!(
                oracle.0, got.0,
                "[chaos={seed:?} {label}] RunStats (incl. spatial) diverged"
            );
            assert_eq!(
                oracle.1, got.1,
                "[chaos={seed:?} {label}] report JSON diverged"
            );
        }
        // The runs above actually exercised the layer.
        assert!(
            oracle.1.contains("\"spatial\":{\"enabled\":true"),
            "spatial layer was not armed"
        );
    }
}

/// Arming the spatial layer must be free of guest side effects: the
/// tracker only observes traffic, never changes it. Everything outside
/// `RunStats::spatial` — and the full trace-event stream — must match a
/// run with the layer off bit for bit.
#[test]
fn arming_spatial_never_perturbs_the_rest_of_the_guest() {
    let e = point(4, 2, Some(7));
    let run = |spatial: bool| {
        let mut sys = build_system(&e);
        sys.tracer().enable_all();
        let store = MemorySink::shared();
        sys.tracer().add_sink(Box::new(MemorySink::attach(&store)));
        if spatial {
            sys.enable_spatial(32);
        }
        let mut stats = sys.run(e.max_cycles).expect("run must complete");
        let events = store.borrow().len();
        let first = format!("{:?}", &store.borrow()[..events.min(64)]);
        // Blank out the spatial section so the rest compares exactly.
        stats.spatial = Default::default();
        (format!("{stats:?}"), events, first)
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(off.0, on.0, "spatial layer perturbed non-spatial RunStats");
    assert_eq!(off.1, on.1, "spatial layer perturbed trace length");
    assert_eq!(off.2, on.2, "spatial layer perturbed trace events");
}

/// With the layer off, reports still carry the always-on home heatmap and
/// link matrix — only the per-line tracker is dark.
#[test]
fn heatmaps_are_collected_even_with_the_line_tracker_off() {
    let e = point(4, 2, None);
    let mut sys = build_system(&e);
    assert!(!sys.spatial_enabled());
    let stats = sys.run(e.max_cycles).expect("run must complete");
    let sp = &stats.spatial;
    assert!(!sp.enabled);
    assert!(sp.hot_lines.is_empty(), "tracker off must track nothing");
    assert_eq!(sp.homes.len(), 4, "home heatmap is always collected");
    assert!(!sp.links.is_empty(), "link matrix is always collected");
    assert!(sp.homes.iter().any(|h| h.handlers > 0));
    let msgs: u64 = sp.links.iter().map(|l| l.msgs).sum();
    // Every network message traverses >= 2 links (inject + eject).
    assert!(msgs >= 2 * stats.network.messages);
}

/// The interval sampler's optional hot-spot columns: armed via
/// `enable_metrics_hotspots`, the two extra columns land in every row,
/// survive a CSV round trip, and stay deterministic run to run.
#[test]
fn hotspot_metrics_columns_round_trip_through_csv() {
    let e = point(4, 2, None);
    let run = || {
        let mut sys = build_system(&e);
        sys.enable_metrics_hotspots(5_000);
        sys.enable_spatial(32);
        sys.run(e.max_cycles).expect("run must complete");
        sys.metrics().expect("metrics armed").to_csv()
    };
    let csv = run();
    assert_eq!(csv, run(), "hot-spot metrics columns are not deterministic");

    let mut lines = csv.lines();
    let header: Vec<&str> = lines.next().expect("csv header").split(',').collect();
    let occ_col = header
        .iter()
        .position(|c| *c == "hot_home_occ")
        .expect("hot_home_occ column");
    let util_col = header
        .iter()
        .position(|c| *c == "hot_link_util")
        .expect("hot_link_util column");
    let mut rows = 0usize;
    let (mut occ_seen, mut util_seen) = (0.0f64, 0.0f64);
    for line in lines {
        let vals: Vec<f64> = line
            .split(',')
            .map(|v| v.parse().unwrap_or_else(|_| panic!("bad csv cell {v:?}")))
            .collect();
        assert_eq!(vals.len(), header.len(), "ragged csv row");
        // Both columns are per-interval fractions of cycles. Link busy is
        // booked at reservation time (serialization can span into the next
        // interval), so a boundary interval may read slightly above 1.
        assert!((0.0..=1.0).contains(&vals[occ_col]), "occ out of range");
        assert!(
            (0.0..2.0).contains(&vals[util_col]),
            "util out of range: {}",
            vals[util_col]
        );
        occ_seen = occ_seen.max(vals[occ_col]);
        util_seen = util_seen.max(vals[util_col]);
        rows += 1;
    }
    assert!(rows >= 2, "expected at least 2 sampled intervals");
    assert!(util_seen > 0.0, "no interval saw link traffic");
    assert!(occ_seen > 0.0, "no interval saw protocol occupancy");

    // The plain sampler must NOT carry the columns (opt-in only).
    let mut plain = build_system(&e);
    plain.enable_metrics(5_000);
    plain.run(e.max_cycles).expect("run must complete");
    let cols = plain.metrics().expect("metrics armed").columns().to_vec();
    assert!(!cols.iter().any(|c| c.starts_with("hot_")));
}

/// The 32-node scaling sentinel: spatial state stays bit-identical between
/// the serial oracle and the aggressively tuned parallel engine at the
/// paper's largest machine. Release-only (`--ignored`), wired into the CI
/// engine-scaling job.
#[test]
#[ignore = "release-scale: run with --ignored"]
fn spatial_32node_bit_identity() {
    let mut e = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Fft, 32, 2);
    e.scale = 0.05;
    e.workers = Some(2);
    let oracle = observe(&e, EngineKind::Serial, EngineTuning::default());
    let tuned = observe(&e, EngineKind::Parallel, aggressive());
    assert_eq!(oracle.0, tuned.0, "32-node RunStats diverged");
    assert_eq!(oracle.1, tuned.1, "32-node report JSON diverged");
    assert!(oracle.1.contains("\"spatial\":{\"enabled\":true"));
}
