//! **smtp** — a full-system simulator reproducing *Chaudhuri & Heinrich,
//! "SMTp: An Architecture for Next-generation Scalable Multi-threading"
//! (ISCA 2004)*.
//!
//! SMTp augments a simultaneous multi-threading processor with a reserved
//! **coherence protocol thread** context. Together with a standard
//! integrated memory controller, the protocol thread runs the
//! directory-based cache-coherence handlers that would otherwise require a
//! DSM-specific programmable memory controller — enabling scalable
//! hardware distributed shared memory built from commodity nodes.
//!
//! This workspace implements the complete evaluation system of the paper:
//!
//! * an out-of-order SMT pipeline with the SMTp extensions
//!   ([`pipeline`]),
//! * a three-level cache hierarchy with MSHRs and protocol bypass buffers
//!   ([`cache`]),
//! * the bitvector directory protocol with handler timing programs
//!   ([`protocol`]),
//! * SDRAM, directory caches and the embedded protocol engine of the
//!   non-SMTp machine models ([`mem`]),
//! * a bristled-hypercube interconnect ([`noc`]),
//! * synthetic kernels for the six applications ([`workloads`]),
//! * the machine assembly and experiment harness ([`core`]), and
//! * an event-tracing and metrics-sampling layer with JSONL and
//!   Chrome-trace/Perfetto sinks ([`trace`]).
//!
//! # Quickstart
//!
//! ```
//! use smtp::{run_experiment, AppKind, ExperimentConfig, MachineModel};
//!
//! let exp = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Fft, 2, 1);
//! let stats = run_experiment(&exp);
//! assert!(stats.cycles > 0);
//! println!("ran {} cycles, {} handlers", stats.cycles, stats.handlers);
//! ```

pub use smtp_bench as bench;
pub use smtp_cache as cache;
pub use smtp_core as core;
pub use smtp_isa as isa;
pub use smtp_mem as mem;
pub use smtp_noc as noc;
pub use smtp_pipeline as pipeline;
pub use smtp_protocol as protocol;
pub use smtp_trace as trace;
pub use smtp_types as types;
pub use smtp_workloads as workloads;

pub use smtp_bench::{Archive, DiffOptions, NoiseBand, ReportDiff, RunKey};
pub use smtp_core::{
    build_system, run_experiment, spatial_json, try_run_experiment, Diagnosis, EngineKind,
    EngineTuning, ExperimentConfig, JsonValue, ParsedReport, ParsedSpatial, Report, RunError,
    RunErrorKind, RunStats, System, ThreadTime, REPORT_SCHEMA_VERSION,
};
pub use smtp_trace::{Heartbeat, HostPhase, HostProfile, LaneProfile};
pub use smtp_trace::{HotLine, SharingClass, SpatialStats};
pub use smtp_types::{
    Distribution, FaultConfig, FaultSummary, Histogram, LatencyBreakdown, MachineModel,
    PhaseProfiler, SystemConfig,
};
pub use smtp_workloads::AppKind;
