//! Compare two runs (or two bench reports) and gate on regressions.
//!
//! ```text
//! # Diff two run reports (written by `--archive` runs or the report example):
//! cargo run --release --example compare -- runs_a.json runs_b.json
//!
//! # Diff two BENCH_report.json documents (legacy bare arrays accepted):
//! cargo run --release --example compare -- BENCH_report.json BENCH_report.new.json
//!
//! # Diff the two most recent archived runs of a configuration:
//! cargo run --release --example compare -- --archive runs/ --app FFT --engine serial
//!
//! # Options:
//! #   --out <path>     write the rendered diff to a file
//! #   --format <text|md|json>   (default text; md is the CI artifact)
//! #   --wall-tol <pct> wall-clock tolerance (default 25)
//! ```
//!
//! Exit status: `0` when the gate passes, `1` on guest-metric drift or a
//! wall-clock regression beyond tolerance, `2` on usage errors.
//!
//! Guest metrics must match **exactly** — the simulator is deterministic,
//! so any delta is a determinism regression, not noise. Wall-clock
//! metrics are gated against the tolerance, and only when both sides come
//! from comparable hosts (same engine/workers for run reports, same
//! `host_cores` for bench reports).

use smtp::bench::{diff_bench_reports, DiffOptions};
use smtp::{JsonValue, ParsedReport};

fn usage() -> ! {
    eprintln!(
        "usage: compare <baseline.json> <candidate.json> [--out PATH] [--format text|md|json] \
         [--wall-tol PCT]\n       compare --archive DIR [--model M] [--app A] [--nodes N] \
         [--seed S] [--engine E] [--out PATH] [--format ...]"
    );
    std::process::exit(2)
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    args.remove(i);
    if i >= args.len() {
        eprintln!("{flag} expects a value");
        usage();
    }
    Some(args.remove(i))
}

enum Rendered {
    Report(smtp::ReportDiff),
    Bench(smtp::bench::BenchDiff),
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = take_value(&mut args, "--out");
    let format = take_value(&mut args, "--format").unwrap_or_else(|| "text".into());
    let wall_tol_pct: f64 = take_value(&mut args, "--wall-tol")
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("--wall-tol expects a percentage, got {s:?}");
                usage()
            })
        })
        .unwrap_or(25.0);
    let archive_dir = take_value(&mut args, "--archive");
    let opts = DiffOptions {
        wall_tol_frac: wall_tol_pct / 100.0,
        noise: None,
    };

    let diff = if let Some(dir) = archive_dir {
        // Archive mode: diff the two most recent runs matching the filters.
        let archive = smtp::Archive::open(&dir).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        let model = take_value(&mut args, "--model");
        let app = take_value(&mut args, "--app");
        let nodes = take_value(&mut args, "--nodes").map(|s| s.parse::<u64>().unwrap_or(0));
        let seed = take_value(&mut args, "--seed").map(|s| s.parse::<u64>().unwrap_or(0));
        let engine = take_value(&mut args, "--engine");
        if !args.is_empty() {
            usage();
        }
        let mut q = archive.query();
        if let Some(m) = &model {
            q = q.model(m);
        }
        if let Some(a) = &app {
            q = q.app(a);
        }
        if let Some(n) = nodes {
            q = q.nodes(n);
        }
        if let Some(s) = seed {
            q = q.seed(s);
        }
        if let Some(e) = &engine {
            q = q.engine(e);
        }
        let matches = q.run();
        if matches.len() < 2 {
            eprintln!(
                "need at least two matching archived runs to compare, found {}",
                matches.len()
            );
            std::process::exit(2);
        }
        let (base, cand) = (matches[matches.len() - 2], matches[matches.len() - 1]);
        eprintln!(
            "comparing archive lines {} (baseline) and {} (candidate), fingerprint {:016x}",
            base.line, cand.line, cand.key.fingerprint
        );
        if base.key.guest_key() != cand.key.guest_key() {
            eprintln!("note: runs have different configurations/seeds; guest deltas are expected");
        }
        Rendered::Report(smtp::bench::diff_reports(&base.report, &cand.report, &opts))
    } else {
        if args.len() != 2 {
            usage();
        }
        let read = |p: &str| {
            std::fs::read_to_string(p).unwrap_or_else(|e| {
                eprintln!("cannot read {p}: {e}");
                std::process::exit(2);
            })
        };
        let (a_text, b_text) = (read(&args[0]), read(&args[1]));
        if is_bench_doc(&a_text) {
            match diff_bench_reports(&a_text, &b_text, &opts) {
                Ok(d) => Rendered::Bench(d),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
        } else {
            let parse = |p: &str, t: &str| {
                ParsedReport::from_json(t).unwrap_or_else(|e| {
                    eprintln!("{p}: {e}");
                    std::process::exit(2);
                })
            };
            let (a, b) = (parse(&args[0], &a_text), parse(&args[1], &b_text));
            Rendered::Report(smtp::bench::diff_reports(&a, &b, &opts))
        }
    };

    let (rendered, gate) = match &diff {
        Rendered::Report(d) => (
            match format.as_str() {
                "md" => d.render_markdown(),
                "json" => d.to_json(),
                _ => d.render_text(),
            },
            d.gate(),
        ),
        Rendered::Bench(d) => (
            match format.as_str() {
                "md" => d.render_markdown(),
                _ => d.render_text(),
            },
            d.gate(),
        ),
    };
    match &out_path {
        Some(p) => {
            std::fs::write(p, &rendered).unwrap_or_else(|e| {
                eprintln!("cannot write {p}: {e}");
                std::process::exit(2);
            });
            eprintln!("diff written to {p}");
        }
        None => print!("{rendered}"),
    }
    if let Err(failures) = gate {
        eprintln!("\nGATE FAILED:\n{failures}");
        std::process::exit(1);
    }
    eprintln!("gate passed");
}

/// A bench report is either the schema-versioned `{"rows":[...]}` object
/// or the legacy bare row array; a run report is an object with guest
/// headline metrics at top level.
fn is_bench_doc(text: &str) -> bool {
    match smtp::core::json::parse(text) {
        Ok(JsonValue::Arr(_)) => true,
        Ok(v) => v.get("rows").is_some(),
        Err(_) => false,
    }
}
