//! A guided walk through the directory protocol itself: drive one home
//! directory through the canonical read/write/intervene sequence and print
//! every transition with its handler timing program — the coherence logic
//! the SMTp protocol thread executes.
//!
//! ```text
//! cargo run --example protocol_walkthrough
//! ```

use smtp::noc::{Msg, MsgKind};
use smtp::protocol::{handler_program, Directory};
use smtp::types::{Addr, NodeId, Region};

fn show(dir: &mut Directory, msg: Msg) {
    println!("\n>>> {msg}");
    match dir.process(&msg, 0) {
        None => println!("    (line busy: request queued at home)"),
        Some(t) => {
            println!("    handler : {}", t.kind.name());
            println!("    newstate: {:?}", t.new_state);
            for (i, m) in t.sends.iter().enumerate() {
                let gated = if t.data_reply == Some(i) {
                    "  [waits for SDRAM data]"
                } else {
                    ""
                };
                println!("    send[{i}] : {m}{gated}");
            }
            let prog = handler_program(dir.home(), msg.addr, &t);
            println!("    program : {} protocol instructions", prog.len());
            for inst in &prog {
                println!("      pc={:<5} {:?}", inst.pc, inst.op);
            }
            if t.unbusied {
                let pending = dir.take_pending(msg.addr);
                for p in pending {
                    println!("    replaying queued request: {p}");
                    show(dir, p);
                }
            }
        }
    }
}

fn main() {
    let home = NodeId(0);
    let line = Addr::new(home, Region::AppData, 0x4000).line();
    let (a, b, c) = (NodeId(1), NodeId(2), NodeId(3));
    let mut dir = Directory::new(home);

    println!("Directory walkthrough for line {line} at {home:?}");
    show(&mut dir, Msg::new(MsgKind::GetS, line, a, home)); // A reads
    show(&mut dir, Msg::new(MsgKind::GetS, line, b, home)); // B reads
    show(&mut dir, Msg::new(MsgKind::GetX, line, c, home)); // C writes: invalidates A, B
    show(&mut dir, Msg::new(MsgKind::GetS, line, a, home)); // A re-reads: intervention to C
    show(&mut dir, Msg::new(MsgKind::GetX, line, b, home)); // queued behind the busy line
    show(
        &mut dir,
        Msg::new(MsgKind::SharingWb { requester: a }, line, c, home),
    ); // C completes; B's GetX replays

    println!("\nfinal state: {:?}", dir.state(line));
    println!("handlers run: {}", dir.stats().handlers);
}
