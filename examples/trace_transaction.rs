//! Walk one remote read-exclusive coherence transaction through the event
//! trace.
//!
//! ```text
//! cargo run --release --example trace_transaction
//! ```
//!
//! Runs a two-node SMTp machine, captures the full event stream in memory,
//! then picks one write miss to a line homed on the *other* node and prints
//! every event that touched that line while the transaction was in flight:
//! MSHR allocation at the requester, the request crossing the network, the
//! handler dispatch and directory transition on the protocol thread of the
//! home node, its SDRAM access, the data reply crossing back, and the fill
//! that frees the MSHR.

use smtp::trace::{Event, MemorySink, MissClass};
use smtp::types::{LineAddr, NodeId};
use smtp::{build_system, AppKind, ExperimentConfig, MachineModel};

fn main() {
    let e = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Ocean, 2, 2);
    println!(
        "running {:?} {} on {} nodes ({} app threads each), full tracing on...",
        e.model, e.app, e.nodes, e.ways
    );
    let mut sys = build_system(&e);
    let store = MemorySink::shared();
    sys.tracer().enable_all();
    sys.tracer().add_sink(Box::new(MemorySink::attach(&store)));
    let stats = sys.run(e.max_cycles).expect("run must complete");
    let events = store.borrow();
    println!(
        "run complete: {} cycles, {} events captured, {} handlers\n",
        stats.cycles,
        events.len(),
        stats.handlers
    );

    // Find a write (read-exclusive) miss whose home node differs from the
    // requester: an MshrAlloc at node R followed — before the matching
    // MshrFree — by a HandlerDispatch for the same line at node H != R.
    let txn = find_remote_write_miss(&events);
    let Some((start, end, line, requester)) = txn else {
        println!("no remote write miss found (try a larger scale)");
        return;
    };

    println!(
        "remote read-exclusive transaction on line {:#x} (requester node {}, home node {}):\n",
        line.raw(),
        requester.0,
        1 - requester.0
    );
    // Events are captured in emission order; components stamp them with
    // slightly different conventions (a network inject is stamped with its
    // scheduled departure, which can precede the cycle the requester's MSHR
    // event was recorded). Sort by cycle for a readable timeline.
    let mut window: Vec<&(u64, Event)> = events[start..=end]
        .iter()
        .filter(|(_, ev)| ev.line() == Some(line))
        .collect();
    window.sort_by_key(|(t, _)| *t);
    let t0 = window[0].0;
    for (t, ev) in &window {
        println!("  [+{:>5}] {ev}", t - t0);
    }
    println!(
        "\ntransaction latency: {} cycles",
        window.last().unwrap().0 - t0
    );
}

/// Locate the first completed remote write-miss transaction. Returns the
/// event-index range `[alloc, free]`, the line, and the requesting node.
fn find_remote_write_miss(events: &[(u64, Event)]) -> Option<(usize, usize, LineAddr, NodeId)> {
    for (i, (_, ev)) in events.iter().enumerate() {
        let Event::MshrAlloc {
            node,
            line,
            miss: MissClass::Write,
        } = *ev
        else {
            continue;
        };
        let mut remote_handler = false;
        for (j, (_, later)) in events.iter().enumerate().skip(i + 1) {
            match *later {
                Event::HandlerDispatch {
                    node: home,
                    line: l,
                    ..
                } if l == line && home != node => remote_handler = true,
                Event::MshrFree { node: n, line: l } if n == node && l == line => {
                    if remote_handler {
                        return Some((i, j, line, node));
                    }
                    break;
                }
                _ => {}
            }
        }
    }
    None
}
