//! Walk one remote read-exclusive coherence transaction through the event
//! trace, selected by its causal *span* rather than by line address.
//!
//! ```text
//! cargo run --release --example trace_transaction
//! ```
//!
//! Runs a two-node SMTp machine, captures the full event stream in memory,
//! then picks one write miss to a line homed on the *other* node and prints
//! every event stamped with that transaction's [`SpanId`]: MSHR allocation
//! at the requester, the request crossing the network, the handler dispatch
//! and directory transition on the protocol thread of the home node, its
//! SDRAM access, the data reply crossing back, and the fill that frees the
//! MSHR. Filtering by span (not line) keeps unrelated traffic to the same
//! line — other nodes' misses, later reuse — out of the timeline.

use smtp::trace::{Event, MemorySink, MissClass};
use smtp::types::SpanId;
use smtp::{build_system, AppKind, ExperimentConfig, MachineModel};

fn main() {
    let e = ExperimentConfig::quick(MachineModel::SMTp, AppKind::Ocean, 2, 2);
    println!(
        "running {:?} {} on {} nodes ({} app threads each), full tracing on...",
        e.model, e.app, e.nodes, e.ways
    );
    let mut sys = build_system(&e);
    let store = MemorySink::shared();
    sys.tracer().enable_all();
    sys.tracer().add_sink(Box::new(MemorySink::attach(&store)));
    let stats = sys.run(e.max_cycles).expect("run must complete");
    let events = store.borrow();
    println!(
        "run complete: {} cycles, {} events captured, {} handlers\n",
        stats.cycles,
        events.len(),
        stats.handlers
    );

    // Find a write (read-exclusive) miss whose home node differs from the
    // requester: an MshrAlloc at node R whose span is later seen by a
    // HandlerDispatch at node H != R, before the matching MshrFree.
    let Some(span) = find_remote_write_miss(&events) else {
        println!("no remote write miss found (try a larger scale)");
        return;
    };

    // One span = one transaction: every derived message, handler
    // activation, SDRAM access and fill carries it. Collect by span alone.
    let mut window: Vec<&(u64, Event)> =
        events.iter().filter(|(_, ev)| ev.span() == span).collect();
    let line = window
        .iter()
        .find_map(|(_, ev)| ev.line())
        .expect("span has a line");
    println!(
        "remote read-exclusive transaction {span} on line {:#x} ({} events carry the span):\n",
        line.raw(),
        window.len()
    );
    // Events are captured in emission order; components stamp them with
    // slightly different conventions (a network inject is stamped with its
    // scheduled departure, which can precede the cycle the requester's MSHR
    // event was recorded). Sort by cycle for a readable timeline.
    window.sort_by_key(|(t, _)| *t);
    let t0 = window[0].0;
    for (t, ev) in &window {
        println!("  [+{:>5}] {ev}", t - t0);
    }
    println!(
        "\ntransaction latency: {} cycles",
        window.last().unwrap().0 - t0
    );
}

/// Locate the first completed remote write-miss transaction and return its
/// span: an `MshrAlloc(Write)` whose span reappears in a `HandlerDispatch`
/// on a different node before the `MshrFree` closes it.
fn find_remote_write_miss(events: &[(u64, Event)]) -> Option<SpanId> {
    for (i, (_, ev)) in events.iter().enumerate() {
        let Event::MshrAlloc {
            node,
            miss: MissClass::Write,
            span,
            ..
        } = *ev
        else {
            continue;
        };
        let mut remote_handler = false;
        for (_, later) in events.iter().skip(i + 1) {
            match *later {
                Event::HandlerDispatch {
                    node: home,
                    span: s,
                    ..
                } if s == span && home != node => {
                    remote_handler = true;
                }
                Event::MshrFree { span: s, .. } if s == span => {
                    if remote_handler {
                        return Some(span);
                    }
                    break;
                }
                _ => {}
            }
        }
    }
    None
}
