//! Explain where the slowest coherence transactions spent their time.
//!
//! ```text
//! cargo run --release --example explain
//! cargo run --release --example explain -- ocean 4 2
//! cargo run --release --example explain -- fft 2 2 --top 5
//! cargo run --release --example explain -- fft 2 2 --trace explain_trace.json
//! cargo run --release --example explain -- fft 4 2 --hotspots
//! ```
//!
//! Runs one simulation with causal-span analysis on: every L2 miss
//! transaction gets a [`smtp::types::SpanId`] that rides every derived
//! message, intervention, writeback, retry and handler activation. At the
//! end, prints the run-level critical-path breakdown (where *all* miss
//! cycles went: requester, network, home queueing, handler, SDRAM, retry)
//! and then the top-K slowest transactions, each as an annotated causal
//! tree plus its critical-path walk.
//!
//! With `--trace <path>`, also writes a Chrome/Perfetto trace whose flow
//! arrows connect each transaction's events across nodes — load it at
//! <https://ui.perfetto.dev> and follow a span arrow from the requester's
//! miss through the home node's handler and back.
//!
//! With `--hotspots`, the spatial attribution layer runs alongside the
//! causal spans: after the top-K slowest transactions, the hottest cache
//! line is named with its sharing classification, and the slowest
//! transaction that touched *that line* is rendered as a causal tree —
//! linking "where is the traffic" to "why is it slow" in one view.

use smtp::trace::{ChromeTraceSink, PATH_CAT_NAMES};
use smtp::{build_system, AppKind, ExperimentConfig, MachineModel};

fn parse_app(s: &str) -> AppKind {
    AppKind::ALL
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(s))
        .unwrap_or_else(|| {
            eprintln!("unknown app {s:?}; one of: fft fftw lu ocean radix water");
            std::process::exit(2)
        })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut top_k = 3usize;
    let mut trace_path: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--top") {
        args.remove(i);
        top_k = args.remove(i).parse().expect("--top takes a number");
    }
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        args.remove(i);
        trace_path = Some(args.remove(i));
    }
    let hotspots = match args.iter().position(|a| a == "--hotspots") {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    };
    let app = args.first().map_or(AppKind::Ocean, |s| parse_app(s));
    let nodes: usize = args.get(1).map_or(2, |s| s.parse().expect("nodes"));
    let ways: usize = args.get(2).map_or(2, |s| s.parse().expect("ways"));

    let e = ExperimentConfig::quick(MachineModel::SMTp, app, nodes, ways);
    println!(
        "running {:?} {} on {} nodes ({} app threads each) with causal spans...",
        e.model, e.app, e.nodes, e.ways
    );
    let mut sys = build_system(&e);
    sys.enable_host_telemetry();
    if hotspots {
        sys.enable_spatial(64);
    }
    let causal = sys.enable_causal_spans(top_k);
    if let Some(path) = &trace_path {
        let file = std::fs::File::create(path).unwrap_or_else(|err| {
            eprintln!("cannot create {path}: {err}");
            std::process::exit(2);
        });
        sys.tracer().add_sink(Box::new(ChromeTraceSink::new(
            Box::new(std::io::BufWriter::new(file)),
            e.nodes,
        )));
    }
    let stats = sys.run(e.max_cycles).expect("run must complete");

    let cp = &stats.critical_path;
    println!(
        "\nrun complete: {} cycles, {} transactions closed ({} still open)\n",
        stats.cycles,
        cp.spans,
        causal.open_count()
    );
    println!(
        "critical-path breakdown over all {} transactions:",
        cp.spans
    );
    let total = cp.total_cycles.max(1);
    for (name, &cycles) in PATH_CAT_NAMES.iter().zip(cp.cycles.iter()) {
        if cycles > 0 {
            println!(
                "  {name:<14} {cycles:>10} cycles ({:.1}%)",
                100.0 * cycles as f64 / total as f64
            );
        }
    }
    println!(
        "  {:<14} {:>10} cycles ({:.1} per transaction)",
        "total",
        cp.total_cycles,
        cp.total_cycles as f64 / cp.spans.max(1) as f64
    );

    for (rank, ex) in causal.exemplars().iter().enumerate() {
        println!("\n== #{} slowest transaction ==", rank + 1);
        print!("{}", ex.render_tree());
        print!("{}", ex.render_critical_path());
    }
    if hotspots {
        let sp = &stats.spatial;
        match sp.hot_lines.first() {
            Some(h) => {
                println!(
                    "\n== hottest line: {:#x} (home n{}) ==\n\
                     classified {} — {}±{} tracked events, {} reads / {} writes, \
                     {} invals sent, {} nacks, peak {} sharers",
                    h.line,
                    h.home,
                    h.class.as_str(),
                    h.weight,
                    h.err,
                    h.c.reads,
                    h.c.writes,
                    h.c.invals_sent,
                    h.c.nacks,
                    h.c.peak_sharers
                );
                match causal.exemplar_for_line(h.line) {
                    Some(ex) => {
                        println!("slowest transaction on this line:");
                        print!("{}", ex.render_tree());
                        print!("{}", ex.render_critical_path());
                    }
                    None => println!(
                        "no closed transaction on this line was retained \
                         (it may have stayed node-local)"
                    ),
                }
            }
            None => println!("\nno hot lines tracked"),
        }
    }
    if let Some(host) = sys.take_host_profile() {
        println!(
            "\nhost engine: {} spent {:.1} ms wall-clock ({:.0} sim cycles/s)",
            host.engine,
            host.wall_ns as f64 / 1e6,
            host.sim_cycles_per_sec()
        );
    }
    if let Some(path) = &trace_path {
        println!("\nPerfetto trace with flow arrows written to {path}");
    }
}
