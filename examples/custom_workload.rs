//! Run a *custom* workload on the SMTp machine: implement the
//! [`smtp::workloads::Kernel`] trait and hand your generators to
//! [`smtp::System::with_threads`].
//!
//! The kernel below is a producer/consumer ping-pong: each thread
//! alternately writes a shared buffer owned by its neighbour node and
//! reads the buffer written for it, with a barrier per round — a classic
//! migratory-sharing stress that exercises the three-hop intervention path
//! of the directory protocol.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use smtp::types::{Addr, MachineModel, NodeId, Region, SystemConfig};
use smtp::workloads::{Item, Kernel, ThreadGen};
use smtp::System;
use smtp_workloads::gen::Emit;
use std::collections::VecDeque;

/// Ping-pong kernel: `rounds` rounds of write-remote / read-own / barrier.
struct PingPong {
    tid: usize,
    total: usize,
    nodes: usize,
    rounds: u32,
    round: u32,
}

impl PingPong {
    /// Buffer written *by* thread `t` (homed on the next node).
    fn out_buf(&self, t: usize) -> Addr {
        let target = NodeId((((t / (self.total / self.nodes).max(1)) + 1) % self.nodes) as u16);
        Addr::new(target, Region::AppData, 0x1000 + t as u64 * 4096)
    }
}

impl Kernel for PingPong {
    fn next_chunk(&mut self, q: &mut VecDeque<Item>) -> bool {
        if self.round == self.rounds {
            return false;
        }
        self.round += 1;
        let mut e = Emit::new(q);
        // Produce: write 8 lines of my outgoing buffer (remote home).
        let my_out = self.out_buf(self.tid);
        for l in 0..8u64 {
            e.prefetch(10, Addr(my_out.raw() + l * 128), true);
            e.fload(11, Addr(my_out.raw() + l * 128), 16);
            e.fp(12, smtp::isa::Op::FpMul, 16, 0, 1);
            e.fstore(13, Addr(my_out.raw() + l * 128), 1);
            e.loop_branch(14, l != 7, 11);
        }
        e.barrier(0);
        // Consume: read the buffer produced by my predecessor thread.
        let pred = (self.tid + self.total - 1) % self.total;
        let inbox = self.out_buf(pred);
        for l in 0..8u64 {
            e.fload(20, Addr(inbox.raw() + l * 128), 17);
            e.fp(21, smtp::isa::Op::FpAlu, 17, 2, 3);
            e.loop_branch(22, l != 7, 20);
        }
        e.barrier(1);
        true
    }
}

fn main() {
    let nodes = 4;
    let ways = 1;
    let cfg = SystemConfig::new(MachineModel::SMTp, nodes, ways);
    let total = nodes * ways;
    let mut sys = System::with_threads(cfg, |node, ctx| {
        let tid = node.idx() * ways + ctx.idx();
        ThreadGen::new(
            Box::new(PingPong {
                tid,
                total,
                nodes,
                rounds: 50,
                round: 0,
            }),
            tid,
            total,
            nodes,
        )
    });
    let stats = sys.run(200_000_000).expect("run must complete");
    println!("ping-pong on {nodes} SMTp nodes:");
    println!("  cycles            : {}", stats.cycles);
    println!("  handlers          : {}", stats.handlers);
    println!("  network messages  : {}", stats.network.messages);
    println!("  barrier episodes  : {}", stats.barrier_episodes);
    println!(
        "  protocol occupancy: {:.1}%",
        stats.protocol_occupancy_peak * 100.0
    );
    assert!(stats.handlers > 0);
}
