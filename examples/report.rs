//! Run one simulation and print a paper-style latency/occupancy report.
//!
//! ```text
//! cargo run --release --example report
//! cargo run --release --example report -- ocean 16 2
//! cargo run --release --example report -- fft 4 2 --model base
//! cargo run --release --example report -- fft 4 2 --json > report.json
//! cargo run --release --example report -- fft 4 2 --md
//! cargo run --release --example report -- fft 4 2 --summary
//! ```
//!
//! The report covers Table 7 protocol occupancy, a Fig. 5/7-style
//! per-thread time breakdown, end-to-end L2 miss latency percentiles per
//! {local,remote}x{read,read-exclusive} class, the phase decomposition
//! of remote misses (issue, request network, dispatch queue, handler +
//! SDRAM, reply network, fill, completion), and the spatial "Hot spots"
//! section: classified hot cache lines, the per-home-node occupancy
//! heatmap, and the NoC link utilization matrix. `--summary` prints the
//! one-screen digest instead, surfacing the spatial peaks next to the
//! machine-wide numbers.

use smtp::{build_system, AppKind, ExperimentConfig, MachineModel, Report};

fn parse_app(s: &str) -> AppKind {
    AppKind::ALL
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(s))
        .unwrap_or_else(|| {
            eprintln!("unknown app {s:?}; one of: fft fftw lu ocean radix water");
            std::process::exit(2)
        })
}

fn parse_model(s: &str) -> MachineModel {
    MachineModel::ALL
        .into_iter()
        .find(|m| format!("{m:?}").eq_ignore_ascii_case(s))
        .unwrap_or_else(|| {
            eprintln!("unknown model {s:?}; one of: base intperfect int512kb int64kb smtp");
            std::process::exit(2)
        })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut take_flag = |flag: &str| -> bool {
        args.iter()
            .position(|a| a == flag)
            .map(|i| args.remove(i))
            .is_some()
    };
    let json = take_flag("--json");
    let md = take_flag("--md");
    let summary = take_flag("--summary");
    let model = match args.iter().position(|a| a == "--model") {
        Some(i) => {
            if i + 1 >= args.len() {
                eprintln!("--model requires a value");
                std::process::exit(2);
            }
            args.remove(i);
            parse_model(&args.remove(i))
        }
        None => MachineModel::SMTp,
    };
    let app = args.first().map(|s| parse_app(s)).unwrap_or(AppKind::Fft);
    let nodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let ways: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);

    let exp = ExperimentConfig::new(model, app, nodes, ways);
    let mut sys = build_system(&exp);
    sys.enable_host_telemetry();
    // Track the hottest lines so the report's "Hot spots" section carries
    // the per-line classification alongside the home/link heat.
    sys.enable_spatial(64);
    let stats = sys.run(exp.max_cycles).expect("run must complete");
    let host = sys.take_host_profile();
    let report = match &host {
        Some(h) => Report::with_host_profile(&stats, h),
        None => Report::new(&stats),
    };
    if json {
        println!("{}", report.json());
    } else if md {
        println!("{}", report.markdown());
    } else if summary {
        print!("{}", report.summary());
    } else {
        println!("{}", report.text());
    }
}
