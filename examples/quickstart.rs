//! Quickstart: simulate one SMTp machine end to end and print the
//! headline statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- ocean 8 2
//! cargo run --release --example quickstart -- fft 2 2 --trace out.trace.json
//! cargo run --release --example quickstart -- --trace          # default path
//! cargo run --release --example quickstart -- --faults 42      # chaos run
//! cargo run --release --example quickstart -- --engine parallel
//! cargo run --release --example quickstart -- --engine parallel --workers 2
//! cargo run --release --example quickstart -- --telemetry host_profile.json
//! cargo run --release --example quickstart -- --heartbeat hb.jsonl
//! cargo run --release --example quickstart -- --archive runs/
//! cargo run --release --example quickstart -- --hotspots [hotspots.json]
//! ```
//!
//! With `--trace <path>` the full event stream is exported in Chrome
//! trace-event format — open the file at <https://ui.perfetto.dev> or in
//! `chrome://tracing` to see pipelines, protocol handlers, coherence
//! transactions and network traffic on a shared timeline.
//!
//! With `--engine <serial|parallel>` the run uses the chosen execution
//! engine (default serial). Both produce bit-identical results; `parallel`
//! partitions the nodes across worker threads and skips provably idle
//! cycles, so large machines simulate faster on multi-core hosts.
//! `--workers N` pins the parallel engine's worker count (default: the
//! host's available parallelism) — a host-side knob that never changes the
//! simulated results.
//!
//! With `--telemetry [path]` the engine profiles *itself*: host-side
//! wall-clock attribution per run-loop phase (tick, barrier waits, merge,
//! replay, …) is printed after the run and written as JSON to `path`
//! (default `host_profile.json`). With `--heartbeat [path]` a periodic
//! JSONL liveness record (cycle, sim-cycles/sec, epoch rate, worker
//! utilization) is appended to `path` (default: stderr) while the run is
//! in flight.
//!
//! With `--archive <dir>` the run's full JSON report is appended to the
//! cross-run archive at `dir` (created on first use), keyed by the
//! configuration fingerprint — compare archived runs afterwards with the
//! `compare` example.
//!
//! With `--hotspots [path]` the run arms the spatial attribution layer:
//! after the run the top contended cache lines (with their sharing-pattern
//! classification), the hottest home nodes and the busiest NoC links are
//! printed, and the full spatial section is written as JSON to `path`
//! (default `hotspots.json`).
//!
//! With `--faults <seed>` the run injects seeded faults everywhere at once
//! (link drops/corruption/duplication, correctable ECC errors, dispatch
//! stalls, protocol-thread starvation) and relies on the link-level retry
//! layer and recovery machinery to finish correctly anyway. If the machine
//! cannot recover, the diagnosis is written to `fault_diagnosis.txt`.

use smtp::trace::ChromeTraceSink;
use smtp::{build_system, AppKind, EngineKind, ExperimentConfig, FaultConfig, MachineModel};

fn parse_app(s: &str) -> AppKind {
    AppKind::ALL
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(s))
        .unwrap_or_else(|| {
            eprintln!("unknown app {s:?}; one of: fft fftw lu ocean radix water");
            std::process::exit(2)
        })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let looks_app = |s: &str| {
        AppKind::ALL
            .iter()
            .any(|a| a.name().eq_ignore_ascii_case(s))
    };
    let looks_positional = |s: &str| s.parse::<usize>().is_ok() || looks_app(s);
    let trace_path = match args.iter().position(|a| a == "--trace") {
        Some(i) => {
            args.remove(i);
            // An explicit path may follow; otherwise use a default.
            if i < args.len() && !args[i].starts_with("--") && !looks_positional(&args[i]) {
                Some(args.remove(i))
            } else {
                Some("quickstart.trace.json".to_string())
            }
        }
        None => None,
    };
    let engine = match args.iter().position(|a| a == "--engine") {
        Some(i) => {
            args.remove(i);
            if i >= args.len() {
                eprintln!("--engine expects serial or parallel");
                std::process::exit(2);
            }
            let s = args.remove(i);
            s.parse::<EngineKind>().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2)
            })
        }
        None => EngineKind::Serial,
    };
    let workers = match args.iter().position(|a| a == "--workers") {
        Some(i) => {
            args.remove(i);
            if i >= args.len() {
                eprintln!("--workers expects a thread count");
                std::process::exit(2);
            }
            let s = args.remove(i);
            match s.parse::<usize>() {
                Ok(w) if w >= 1 => Some(w),
                _ => {
                    eprintln!("--workers expects a count >= 1, got {s:?}");
                    std::process::exit(2);
                }
            }
        }
        None => None,
    };
    let telemetry_path = match args.iter().position(|a| a == "--telemetry") {
        Some(i) => {
            args.remove(i);
            // An explicit path may follow; otherwise use a default.
            if i < args.len() && !args[i].starts_with("--") && !looks_positional(&args[i]) {
                Some(args.remove(i))
            } else {
                Some("host_profile.json".to_string())
            }
        }
        None => None,
    };
    let heartbeat_path = match args.iter().position(|a| a == "--heartbeat") {
        Some(i) => {
            args.remove(i);
            // An explicit path may follow; otherwise beat to stderr.
            if i < args.len() && !args[i].starts_with("--") && !looks_positional(&args[i]) {
                Some(Some(args.remove(i)))
            } else {
                Some(None)
            }
        }
        None => None,
    };
    let hotspots_path = match args.iter().position(|a| a == "--hotspots") {
        Some(i) => {
            args.remove(i);
            // An explicit path may follow; otherwise use a default.
            if i < args.len() && !args[i].starts_with("--") && !looks_positional(&args[i]) {
                Some(args.remove(i))
            } else {
                Some("hotspots.json".to_string())
            }
        }
        None => None,
    };
    let archive_dir = match args.iter().position(|a| a == "--archive") {
        Some(i) => {
            args.remove(i);
            if i >= args.len() || args[i].starts_with("--") {
                eprintln!("--archive expects a directory path");
                std::process::exit(2);
            }
            Some(args.remove(i))
        }
        None => None,
    };
    let fault_seed = match args.iter().position(|a| a == "--faults") {
        Some(i) => {
            args.remove(i);
            // An explicit seed may follow; otherwise use a default.
            if i < args.len() && !args[i].starts_with("--") && !looks_app(&args[i]) {
                let s = args.remove(i);
                Some(s.parse::<u64>().unwrap_or_else(|_| {
                    eprintln!("--faults expects a numeric seed, got {s:?}");
                    std::process::exit(2)
                }))
            } else {
                Some(0xC8A05)
            }
        }
        None => None,
    };
    let app = args.first().map(|s| parse_app(s)).unwrap_or(AppKind::Fft);
    let nodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let ways: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);

    println!(
        "SMTp machine: {nodes} node(s), {ways} application thread(s) per node, \
         running {app} ({engine} engine)"
    );
    let mut exp = ExperimentConfig::new(MachineModel::SMTp, app, nodes, ways);
    exp.engine = engine;
    exp.workers = workers;
    if let Some(w) = workers {
        println!("worker threads pinned   : {w}");
    }
    if trace_path.is_some() {
        // Tracing a full-scale run produces an enormous file; shrink the
        // workload so the timeline stays explorable.
        exp.scale = 0.12;
    }
    if let Some(seed) = fault_seed {
        println!("fault injection enabled : chaos plan, seed {seed}");
        exp.faults = FaultConfig::chaos(seed);
        // Chaos runs pay retry and stall latency; keep them short.
        exp.scale = exp.scale.min(0.12);
    }
    let mut sys = build_system(&exp);
    if fault_seed.is_some() {
        sys.enable_invariant_checks(50_000);
    }
    if hotspots_path.is_some() {
        println!("spatial attribution     : tracking top 64 lines per node");
        sys.enable_spatial(64);
    }
    if telemetry_path.is_some() || archive_dir.is_some() {
        // Archived reports carry the host profile so wall clocks from the
        // same host can be compared later.
        sys.enable_host_telemetry();
    }
    if let Some(path) = &heartbeat_path {
        let out: Option<Box<dyn std::io::Write + Send>> = match path {
            Some(p) => {
                let file = std::fs::File::create(p).unwrap_or_else(|e| {
                    eprintln!("cannot create {p}: {e}");
                    std::process::exit(2);
                });
                Some(Box::new(file))
            }
            None => None, // stderr
        };
        sys.enable_heartbeat(50_000, out);
    }
    if let Some(path) = &trace_path {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(2);
        });
        sys.tracer().enable_all();
        sys.tracer().add_sink(Box::new(ChromeTraceSink::new(
            Box::new(std::io::BufWriter::new(file)),
            nodes,
        )));
    }
    let stats = match sys.run_with(exp.max_cycles, exp.engine) {
        Ok(stats) => stats,
        Err(err) => {
            let path = "fault_diagnosis.txt";
            let report = err.to_string();
            eprintln!("\nrun failed: {}", report.lines().next().unwrap_or(""));
            match std::fs::write(path, &report) {
                Ok(()) => eprintln!("full diagnosis written to {path}"),
                Err(e) => eprintln!("cannot write {path}: {e}\n{report}"),
            }
            std::process::exit(1);
        }
    };

    println!();
    println!(
        "parallel execution time : {} cycles ({:.2} ms at 2 GHz)",
        stats.cycles,
        stats.cycles as f64 / 2.0e6
    );
    println!("application instructions: {}", stats.app_instructions);
    println!(
        "protocol instructions   : {} ({:.2}% of all retired)",
        stats.protocol_instructions,
        stats.protocol_retired_frac * 100.0
    );
    println!("coherence handlers      : {}", stats.handlers);
    println!(
        "memory-stall fraction   : {:.1}%",
        stats.memory_stall_frac() * 100.0
    );
    println!(
        "protocol occupancy peak : {:.1}%",
        stats.protocol_occupancy_peak * 100.0
    );
    println!(
        "L1D app miss rate       : {:.2}%",
        stats.l1d_app_miss_rate * 100.0
    );
    println!(
        "network messages        : {} (mean latency {:.0} cycles)",
        stats.network.messages,
        stats.network.mean_latency()
    );
    println!(
        "locks / barrier episodes: {} / {}",
        stats.lock_acquires, stats.barrier_episodes
    );
    if stats.faults.any() {
        let f = &stats.faults;
        println!(
            "faults injected         : {} drops, {} CRC, {} dups, {} delays -> {} retransmits",
            f.link_drops, f.link_crc_errors, f.link_duplicates, f.link_delays, f.link_retransmits
        );
        println!(
            "                          {} ECC corrected, {} stall windows, {} starvation windows, {} handler delays",
            f.ecc_corrected,
            f.dispatch_stall_windows,
            f.starvation_windows,
            f.handler_delays
        );
        println!("recovery                : all transactions completed despite injected faults");
    }
    if let Some(path) = &trace_path {
        println!("trace written           : {path} (load it at https://ui.perfetto.dev)");
    }
    if let Some(path) = &hotspots_path {
        let sp = &stats.spatial;
        println!();
        println!(
            "Hot lines (top {} of {} tracked events):",
            5, sp.tracked_events
        );
        for h in sp.hot_lines.iter().take(5) {
            println!(
                "  {:#012x} home n{}: {:<22} {}±{} events, {} reads / {} writes, \
                 {} invals, {} nacks",
                h.line,
                h.home,
                h.class.as_str(),
                h.weight,
                h.err,
                h.c.reads,
                h.c.writes,
                h.c.invals_sent,
                h.c.nacks
            );
        }
        println!("Hottest home nodes:");
        let mut homes: Vec<_> = sp.homes.iter().collect();
        homes.sort_by_key(|h| (std::cmp::Reverse(h.occupancy_cycles), h.node));
        for h in homes.iter().take(3) {
            println!(
                "  n{}: {:.1}% occupancy, {} handlers, {} nacks, queue wait mean {:.1} cyc",
                h.node,
                100.0 * sp.home_occ(h),
                h.handlers,
                h.nacks,
                h.queue_wait.mean()
            );
        }
        println!("Busiest NoC links:");
        let mut links: Vec<_> = sp.links.iter().collect();
        links.sort_by_key(|l| (std::cmp::Reverse(l.busy), l.link));
        for l in links.iter().take(3) {
            println!(
                "  {:<10} {:.1}% util, {} msgs, {} bytes, {} retx",
                l.label,
                100.0 * sp.link_util(l),
                l.msgs,
                l.bytes,
                l.retx
            );
        }
        match std::fs::write(path, smtp::spatial_json(sp)) {
            Ok(()) => println!("hot spots written       : {path}"),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
    let profile = sys.take_host_profile();
    if let Some(dir) = &archive_dir {
        let report = match &profile {
            Some(p) => smtp::Report::with_host_profile(&stats, p).json(),
            None => smtp::Report::new(&stats).json(),
        };
        let mut archive = smtp::Archive::open(dir).unwrap_or_else(|e| {
            eprintln!("cannot open archive {dir}: {e}");
            std::process::exit(2);
        });
        let key = smtp::RunKey::for_experiment(&exp);
        match archive.append(&key, &report) {
            Ok(entry) => println!(
                "run archived            : {dir}/runs.jsonl line {} \
                 (fingerprint {:016x}, seed {})",
                entry.line, entry.key.fingerprint, entry.key.seed
            ),
            Err(e) => {
                eprintln!("cannot archive run: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(profile) = profile {
        println!();
        print!("{}", profile.summary());
        if let Some(path) = &telemetry_path {
            match std::fs::write(path, profile.to_json()) {
                Ok(()) => println!("host profile written    : {path}"),
                Err(e) => eprintln!("cannot write {path}: {e}"),
            }
        }
    }
}
