//! Quickstart: simulate one SMTp machine end to end and print the
//! headline statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- ocean 8 2
//! ```

use smtp::{run_experiment, AppKind, ExperimentConfig, MachineModel};

fn parse_app(s: &str) -> AppKind {
    AppKind::ALL
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(s))
        .unwrap_or_else(|| {
            eprintln!("unknown app {s:?}; one of: fft fftw lu ocean radix water");
            std::process::exit(2)
        })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app = args.get(1).map(|s| parse_app(s)).unwrap_or(AppKind::Fft);
    let nodes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let ways: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(2);

    println!("SMTp machine: {nodes} node(s), {ways} application thread(s) per node, running {app}");
    let exp = ExperimentConfig::new(MachineModel::SMTp, app, nodes, ways);
    let stats = run_experiment(&exp);

    println!();
    println!("parallel execution time : {} cycles ({:.2} ms at 2 GHz)", stats.cycles, stats.cycles as f64 / 2.0e6);
    println!("application instructions: {}", stats.app_instructions);
    println!("protocol instructions   : {} ({:.2}% of all retired)", stats.protocol_instructions, stats.protocol_retired_frac * 100.0);
    println!("coherence handlers      : {}", stats.handlers);
    println!("memory-stall fraction   : {:.1}%", stats.memory_stall_frac() * 100.0);
    println!("protocol occupancy peak : {:.1}%", stats.protocol_occupancy_peak * 100.0);
    println!("L1D app miss rate       : {:.2}%", stats.l1d_app_miss_rate * 100.0);
    println!("network messages        : {} (mean latency {:.0} cycles)", stats.network.messages, stats.network.mean_latency());
    println!("locks / barrier episodes: {} / {}", stats.lock_acquires, stats.barrier_episodes);
}
