//! Compare all five machine models of paper Table 4 on one application —
//! the per-application view behind Figures 2–9.
//!
//! ```text
//! cargo run --release --example compare_models -- radix 16 1
//! ```

use smtp::{run_experiment, AppKind, ExperimentConfig, MachineModel, RunStats};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app = args
        .get(1)
        .and_then(|s| {
            AppKind::ALL
                .into_iter()
                .find(|a| a.name().eq_ignore_ascii_case(s))
        })
        .unwrap_or(AppKind::Ocean);
    let nodes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let ways: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);

    println!("{app} on {nodes} node(s), {ways}-way — five machine models (paper Table 4)\n");
    println!(
        "{:11} {:>10} {:>8} {:>9} {:>9} {:>10} {:>9}",
        "model", "cycles", "norm", "mem-stall", "occupancy", "dir-hit", "handlers"
    );
    let mut base: Option<u64> = None;
    for model in MachineModel::ALL {
        let exp = ExperimentConfig::new(model, app, nodes, ways);
        let r: RunStats = run_experiment(&exp);
        let b = *base.get_or_insert(r.cycles);
        println!(
            "{:11} {:>10} {:>8.3} {:>8.1}% {:>8.1}% {:>9.1}% {:>9}",
            model.label(),
            r.cycles,
            r.cycles as f64 / b as f64,
            r.memory_stall_frac() * 100.0,
            r.protocol_occupancy_peak * 100.0,
            r.dir_cache_hit_rate * 100.0,
            r.handlers,
        );
    }
    println!("\n(norm = execution time normalized to Base; lower is better)");
}
